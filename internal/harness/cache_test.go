package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/resultcache"
	"repro/internal/scenarios"
)

// openTestCache opens a fresh rw cache under t's temp directory.
func openTestCache(t *testing.T, dir string) *resultcache.Cache {
	t.Helper()
	c, err := resultcache.Open(dir, resultcache.ModeRW)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// runCachedCampaign runs the given scenarios through a campaign backed
// by cache and returns the result with its rendered text.
func runCachedCampaign(t *testing.T, suite []scenarios.Scenario, cfg Config) (*CampaignResult, string) {
	t.Helper()
	camp := Campaign{Scenarios: suite, Config: cfg}
	res, err := camp.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	text, err := RenderCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, text
}

// TestCampaignCacheColdWarmByteIdentical is the core cache contract at
// scale 8: a warm run serves every cell from disk with zero misses and
// renders byte-identically to the cold run — per engine, sequential and
// parallel, with and without the verify sample.
func TestCampaignCacheColdWarmByteIdentical(t *testing.T) {
	suite := robustScenarios(t)
	for _, engine := range []jit.Engine{jit.EngineInterp, jit.EngineJIT, jit.EngineAuto} {
		for _, parallelism := range []int{1, 4} {
			t.Run(engine.String()+"-par"+string(rune('0'+parallelism)), func(t *testing.T) {
				dir := t.TempDir()
				cfg := DefaultConfig()
				cfg.Runs = 1
				cfg.Scale = 8
				cfg.Parallelism = parallelism
				cfg.Opts.Tier = engine
				cfg.Cache = openTestCache(t, dir)
				coldRes, coldText := runCachedCampaign(t, suite, cfg)
				coldStats := cfg.Cache.Stats()
				cells := len(coldRes.Rows)
				if coldStats.Puts != uint64(cells) || coldStats.Hits != 0 {
					t.Fatalf("cold stats %+v, want %d puts and 0 hits", coldStats, cells)
				}

				cfg.Cache = openTestCache(t, dir)
				warmRes, warmText := runCachedCampaign(t, suite, cfg)
				warmStats := cfg.Cache.Stats()
				if warmStats.Hits != uint64(cells) || warmStats.Misses != 0 {
					t.Fatalf("warm stats %+v, want %d hits and 0 misses", warmStats, cells)
				}
				if warmText != coldText {
					t.Fatalf("warm output diverged from cold:\n--- cold ---\n%s--- warm ---\n%s", coldText, warmText)
				}
				if !reflect.DeepEqual(coldRes.Rows, warmRes.Rows) {
					t.Fatal("warm rows diverged from cold beyond rendering")
				}

				// A full verify pass re-executes every hit and still renders
				// identically.
				cfg.Cache = openTestCache(t, dir)
				cfg.CacheVerify = 1
				_, verifyText := runCachedCampaign(t, suite, cfg)
				if verifyText != coldText {
					t.Fatal("verified warm output diverged from cold")
				}
				if vs := cfg.Cache.Stats(); vs.Verified != uint64(cells) {
					t.Fatalf("verify stats %+v, want %d verified", vs, cells)
				}
			})
		}
	}
}

// TestPaperTablesGoldenWithCache pins the warm path against the
// pre-refactor golden: the paper tables rendered from a cold cache and
// again from the warm cache are both byte-identical to the golden.
func TestPaperTablesGoldenWithCache(t *testing.T) {
	golden, err := os.ReadFile("testdata/paper_tables_scale8.golden")
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	render := func() string {
		cfg := DefaultConfig()
		cfg.Runs = 1
		cfg.Scale = 8
		cfg.Cache = openTestCache(t, dir)
		rows1, err := TableI(cfg)
		if err != nil {
			t.Fatal(err)
		}
		geo, err := GeoMeanRow(rows1)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := RenderTableI(rows1, geo)
		if err != nil {
			t.Fatal(err)
		}
		rows2, err := TableII(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := RenderTableII(rows2)
		if err != nil {
			t.Fatal(err)
		}
		return t1 + "\n" + t2
	}
	cold := render()
	if cold != string(golden) {
		t.Fatalf("cold cached tables diverged from golden:\n%s", cold)
	}
	warm := render()
	if warm != string(golden) {
		t.Fatalf("warm cached tables diverged from golden:\n%s", warm)
	}
}

// TestCampaignCacheVerifyDetectsTamper proves -cache-verify is loud: a
// cache entry rewritten with a plausible but wrong payload fails its
// cell with a VerifyError instead of silently serving the tampered row.
func TestCampaignCacheVerifyDetectsTamper(t *testing.T) {
	suite := robustScenarios(t)[:1]
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Runs = 1
	cfg.Scale = 8
	cfg.Cache = openTestCache(t, dir)
	if _, err := (Campaign{Scenarios: suite, Config: cfg}).Run(context.Background(), nil); err != nil {
		t.Fatal(err)
	}

	// Tamper every entry: bump a Measurement field but keep the record
	// (and its embedded key) valid, so plain warm runs would happily
	// serve the forgery.
	tampered := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || d.Name() == "VERSION" {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var rec struct {
			Key     string          `json:"key"`
			Payload json.RawMessage `json:"payload"`
		}
		if err := json.Unmarshal(data, &rec); err != nil {
			return err
		}
		var m Measurement
		if err := json.Unmarshal(rec.Payload, &m); err != nil {
			return err
		}
		m.MedianCycles += 1
		forged, err := json.Marshal(m)
		if err != nil {
			return err
		}
		rec.Payload = forged
		out, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		tampered++
		return os.WriteFile(path, out, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if tampered == 0 {
		t.Fatal("no cache entries to tamper with")
	}

	cfg.Cache = openTestCache(t, dir)
	cfg.CacheVerify = 1
	res, err := (Campaign{Scenarios: suite, Config: cfg}).Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != len(res.Rows) {
		t.Fatalf("%d of %d tampered cells failed, want all", res.Failed, len(res.Rows))
	}
	for _, r := range res.Rows {
		var ve *resultcache.VerifyError
		if !asVerifyError(r.Err, &ve) {
			t.Fatalf("row %s/%s failed with %v, want *VerifyError", r.Scenario.Name(), r.AgentName, r.Err)
		}
	}
	// Without verification the tampered rows would have been served: the
	// forgery is detectable only because -cache-verify re-executed.
	cfg.Cache = openTestCache(t, dir)
	cfg.CacheVerify = 0
	res2, err := (Campaign{Scenarios: suite, Config: cfg}).Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Failed != 0 {
		t.Fatalf("unverified run failed %d cells; tampering should be invisible without -cache-verify", res2.Failed)
	}
}

// asVerifyError unwraps r's error chain looking for a *VerifyError;
// errors.As via a helper keeps the call sites readable.
func asVerifyError(err error, target **resultcache.VerifyError) bool {
	for err != nil {
		if ve, ok := err.(*resultcache.VerifyError); ok {
			*target = ve
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestCampaignCacheTransientRetryCachesOnce proves retried transient
// failures never publish partial state: the cell is stored exactly once,
// after its successful attempt, and a warm rerun is byte-identical.
func TestCampaignCacheTransientRetryCachesOnce(t *testing.T) {
	suite := robustScenarios(t)
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Runs = 1
	cfg.Scale = 8
	cfg.MaxRetries = 3
	cfg.Hook = faultinject.New(1, faultinject.Fault{
		Kind: faultinject.Transient, Match: suite[0].Name(), Attempts: 2,
	}).Hook()
	cfg.Cache = openTestCache(t, dir)
	coldRes, coldText := runCachedCampaign(t, suite, cfg)
	if coldRes.Failed != 0 {
		t.Fatalf("%d cells failed despite retries", coldRes.Failed)
	}
	if s := cfg.Cache.Stats(); s.Puts != uint64(len(coldRes.Rows)) {
		t.Fatalf("stats %+v, want exactly %d puts (one per cell, retries excluded)", s, len(coldRes.Rows))
	}

	cfg.Cache = openTestCache(t, dir)
	cfg.Hook = nil
	_, warmText := runCachedCampaign(t, suite, cfg)
	if warmText != coldText {
		t.Fatal("warm output diverged from the retried cold run")
	}
	if s := cfg.Cache.Stats(); s.Misses != 0 {
		t.Fatalf("warm stats %+v, want 0 misses", s)
	}
}

// TestCampaignCacheFailedRowsNeverCached proves an EmitFailed row leaves
// no cache entry behind: rerunning with the fault still active fails
// again (a cached forgery would have masked it), and rerunning without
// the fault misses — then measures — exactly that cell.
func TestCampaignCacheFailedRowsNeverCached(t *testing.T) {
	suite := robustScenarios(t)
	badKey := suite[0].Name() + "/ipa"
	dir := t.TempDir()
	newCfg := func(inject bool) Config {
		cfg := DefaultConfig()
		cfg.Runs = 1
		cfg.Scale = 8
		if inject {
			cfg.Hook = faultinject.New(1, faultinject.Fault{Kind: faultinject.Panic, Match: badKey}).Hook()
		}
		cfg.Cache = openTestCache(t, dir)
		return cfg
	}

	cfg := newCfg(true)
	res, _ := runCachedCampaign(t, suite, cfg)
	if res.Failed != 1 {
		t.Fatalf("cold run failed %d cells, want the 1 injected", res.Failed)
	}
	if s := cfg.Cache.Stats(); s.Puts != uint64(len(res.Rows)-1) {
		t.Fatalf("stats %+v: the failed cell must not be stored", s)
	}

	cfg = newCfg(true)
	res2, _ := runCachedCampaign(t, suite, cfg)
	if res2.Failed != 1 {
		t.Fatalf("warm run with the fault failed %d cells, want 1 — a cached entry masked the failure", res2.Failed)
	}

	cfg = newCfg(false)
	res3, text3 := runCachedCampaign(t, suite, cfg)
	if res3.Failed != 0 {
		t.Fatalf("fault removed but %d cells still failed", res3.Failed)
	}
	if s := cfg.Cache.Stats(); s.Misses != 1 || s.Hits != uint64(len(res3.Rows)-1) {
		t.Fatalf("stats %+v, want exactly 1 miss (the previously failed cell) and %d hits", s, len(res3.Rows)-1)
	}
	// The healed run matches a from-scratch run bit for bit.
	clean := newCfg(false)
	clean.Cache = openTestCache(t, t.TempDir())
	_, cleanText := runCachedCampaign(t, suite, clean)
	if text3 != cleanText {
		t.Fatal("healed run diverged from a from-scratch run")
	}
}

// TestCampaignDedupExecutesOnce proves identical cells in one campaign
// execute once per process: a duplicated scenario produces equal rows
// from a single simulation, sequentially (memoized result) and in
// parallel (singleflight), with or without a persistent cache behind it.
//
// Every execution stores its payload exactly once, so Puts is the
// ground-truth execution count: duplicates that executed would double
// it. (Without a cache the dedup machinery is the same Memo, pinned
// directly by the resultcache unit tests; here only row equality is
// observable.)
func TestCampaignDedupExecutesOnce(t *testing.T) {
	suite := robustScenarios(t)[:1]
	doubled := []scenarios.Scenario{suite[0], suite[0]}
	for _, withCache := range []bool{false, true} {
		for _, parallelism := range []int{1, 4} {
			cfg := DefaultConfig()
			cfg.Runs = 1
			cfg.Scale = 8
			cfg.Parallelism = parallelism
			if withCache {
				cfg.Cache = openTestCache(t, t.TempDir())
			}
			res, _ := runCachedCampaign(t, doubled, cfg)
			if res.Failed != 0 {
				t.Fatalf("cache=%v par=%d: %d cells failed", withCache, parallelism, res.Failed)
			}
			half := len(res.Rows) / 2
			for i := 0; i < half; i++ {
				a, b := res.Rows[i], res.Rows[i+half]
				if !reflect.DeepEqual(a.M, b.M) {
					t.Fatalf("cache=%v par=%d: duplicated cell %s/%s rows diverged", withCache, parallelism, a.Scenario.Name(), a.AgentName)
				}
			}
			if withCache {
				s := cfg.Cache.Stats()
				if s.Puts != uint64(half) {
					t.Fatalf("cache=%v par=%d: %d puts for %d unique cells — duplicates executed", withCache, parallelism, s.Puts, half)
				}
				if s.Deduped+s.Hits == 0 {
					t.Fatalf("cache=%v par=%d: stats %+v show neither dedup nor hit for the duplicate", withCache, parallelism, s)
				}
			}
		}
	}
}

// TestCampaignCellStats proves -cellstats telemetry is stamped on rows
// when asked for, renders in the extended row form, and never perturbs
// the cached payload: a warm run still matches the cold plain rendering.
func TestCampaignCellStats(t *testing.T) {
	suite := robustScenarios(t)[:1]
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.Runs = 1
	cfg.Scale = 8
	cfg.CellStats = true
	cfg.Cache = openTestCache(t, dir)
	res, err := (Campaign{Scenarios: suite, Config: cfg}).Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.WriteString(CampaignCellStatsHeader() + "\n")
	for _, r := range res.Rows {
		if r.M.Host.WallNanos <= 0 {
			t.Fatalf("row %s/%s has no host wall time", r.Scenario.Name(), r.AgentName)
		}
		if r.M.Host.Source != "run" {
			t.Fatalf("cold row source %q, want run", r.M.Host.Source)
		}
		buf.WriteString(r.CellStatsString() + "\n")
	}
	if !strings.Contains(buf.String(), "run") || !strings.Contains(buf.String(), "wall(ms)") {
		t.Fatalf("cellstats rendering missing columns:\n%s", buf.String())
	}

	// Warm: sources flip to "cache", and the plain rendering (the
	// byte-identity surface) is untouched by the telemetry.
	cfg.Cache = openTestCache(t, dir)
	warm, err := (Campaign{Scenarios: suite, Config: cfg}).Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range warm.Rows {
		if r.M.Host.Source != "cache" {
			t.Fatalf("warm row source %q, want cache", r.M.Host.Source)
		}
	}
	coldPlain, err := RenderCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	warmPlain, err := RenderCampaign(warm)
	if err != nil {
		t.Fatal(err)
	}
	if coldPlain != warmPlain {
		t.Fatal("host telemetry leaked into the plain rendering")
	}
	// And the canonical payload excludes Host entirely.
	raw, err := json.Marshal(res.Rows[0].M)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), "wallNanos") {
		t.Fatalf("Host leaked into the canonical Measurement payload: %s", raw)
	}
}

// benchCacheCampaign is the ledger's cache benchmark body: the full
// scenario catalogue under every default agent at scale 8 — the same
// matrix cold and warm, so the pair's ratio is the cache's speedup.
func benchCacheCampaign(b *testing.B, dir string) {
	b.Helper()
	scns, err := scenarios.Profile("all")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Runs = 1
	cfg.Scale = 8
	cfg.Parallelism = 1
	cache, err := resultcache.Open(dir, resultcache.ModeRW)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Cache = cache
	camp := Campaign{Scenarios: scns, Config: cfg}
	if _, err := camp.Run(context.Background(), nil); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkCampaignCacheCold measures the full campaign with an empty
// cache every iteration: simulation cost plus the store's write path.
func BenchmarkCampaignCacheCold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dir, err := os.MkdirTemp("", "cachebench-*")
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		benchCacheCampaign(b, dir)
		b.StopTimer()
		os.RemoveAll(dir)
		b.StartTimer()
	}
}

// BenchmarkCampaignCacheWarm measures the same campaign served entirely
// from a pre-warmed cache; the acceptance floor is a 5x speedup over
// BenchmarkCampaignCacheCold (gated in CI via benchtrend's ratio pairs).
func BenchmarkCampaignCacheWarm(b *testing.B) {
	dir := b.TempDir()
	benchCacheCampaign(b, dir) // prewarm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchCacheCampaign(b, dir)
	}
}
