package harness

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workloads"
)

// TestTableIParallelMatchesSequential is the central determinism
// guarantee of the parallel pipeline: with parallelism >= 4 the rendered
// Table I is byte-identical to the sequential one.
func TestTableIParallelMatchesSequential(t *testing.T) {
	seqCfg := testConfig()
	seqCfg.Parallelism = 1
	parCfg := testConfig()
	parCfg.Parallelism = 8

	seqRows, err := TableI(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := TableI(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Fatalf("parallel rows differ from sequential:\nseq: %+v\npar: %+v", seqRows, parRows)
	}
	seqGeo, err := GeoMeanRow(seqRows)
	if err != nil {
		t.Fatal(err)
	}
	parGeo, err := GeoMeanRow(parRows)
	if err != nil {
		t.Fatal(err)
	}
	seqText, err := RenderTableI(seqRows, seqGeo)
	if err != nil {
		t.Fatal(err)
	}
	parText, err := RenderTableI(parRows, parGeo)
	if err != nil {
		t.Fatal(err)
	}
	if seqText != parText {
		t.Fatal("rendered Table I differs between sequential and parallel execution")
	}
}

// TestTableIIParallelMatchesSequential extends the guarantee to Table II.
func TestTableIIParallelMatchesSequential(t *testing.T) {
	seqCfg := testConfig()
	seqCfg.Parallelism = 1
	parCfg := testConfig()
	parCfg.Parallelism = 8

	seqRows, err := TableII(seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	parRows, err := TableII(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seqRows, parRows) {
		t.Fatalf("parallel Table II differs:\nseq: %+v\npar: %+v", seqRows, parRows)
	}
	seqText, err := RenderTableII(seqRows)
	if err != nil {
		t.Fatal(err)
	}
	parText, err := RenderTableII(parRows)
	if err != nil {
		t.Fatal(err)
	}
	if seqText != parText {
		t.Fatal("rendered Table II differs between sequential and parallel execution")
	}
}

// TestSweepParallelMatchesSequential: the transition-frequency sweep is
// cell-parallel too and must stay deterministic.
func TestSweepParallelMatchesSequential(t *testing.T) {
	points := []int{0, 2, 8}
	seqCfg := testConfig()
	seqCfg.Parallelism = 1
	parCfg := testConfig()
	parCfg.Parallelism = 4
	seq, err := SweepTransitionFrequency(points, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	par, err := SweepTransitionFrequency(points, parCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep differs:\nseq: %+v\npar: %+v", seq, par)
	}
}

// TestTableIContextCancelled: a cancelled context aborts the campaign
// with the context error instead of producing partial rows.
func TestTableIContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TableIContext(ctx, testConfig()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The report-merging math the warehouse aggregation in MeasureContext
// relies on lives in internal/stats; these edge cases pin down the
// behaviors the harness depends on.
func TestMergeReportsEdgeCases(t *testing.T) {
	// Empty row set: nil + nil stays nil.
	if stats.MergeReports(nil, nil) != nil {
		t.Fatal("MergeReports(nil, nil) != nil")
	}
	// Single report: merged copy, not an alias.
	single := &core.Report{AgentName: "IPA", TotalBytecodeCycles: 7,
		PerThread: []core.ThreadStats{{ThreadID: 1, Name: "main"}}}
	got := stats.MergeReports(nil, single)
	if got == single {
		t.Fatal("MergeReports(nil, r) aliased the input")
	}
	if got.TotalBytecodeCycles != 7 || len(got.PerThread) != 1 {
		t.Fatalf("single merge = %+v", got)
	}
	// Zero-cycle reports merge to a zero report with a defined fraction.
	zero := stats.MergeReports(&core.Report{}, &core.Report{})
	if zero.TotalCycles() != 0 || zero.NativeFraction() != 0 {
		t.Fatalf("zero merge = %+v", zero)
	}
	// Single-thread reports accumulate per-thread slices.
	a := &core.Report{PerThread: []core.ThreadStats{{ThreadID: 1}}}
	b := &core.Report{TotalNativeCycles: 3, PerThread: []core.ThreadStats{{ThreadID: 1}}}
	merged := stats.MergeReports(a, b)
	if len(merged.PerThread) != 2 || merged.TotalNativeCycles != 3 {
		t.Fatalf("two single-thread merges = %+v", merged)
	}
}

func TestGeoMeanRowEdgeCases(t *testing.T) {
	// Empty row set: no time rows to aggregate.
	if _, err := GeoMeanRow(nil); err == nil {
		t.Fatal("GeoMeanRow(nil) did not fail")
	}
	// Only throughput rows: still an empty time matrix.
	if _, err := GeoMeanRow([]TableIRow{{Benchmark: "jbb", Throughput: true}}); err == nil {
		t.Fatal("GeoMeanRow(throughput-only) did not fail")
	}
	// Zero-cycle rows: geometric mean requires positive samples.
	if _, err := GeoMeanRow([]TableIRow{{Benchmark: "z"}}); err == nil {
		t.Fatal("GeoMeanRow(zero rows) did not fail")
	}
	// A single time row is its own geometric mean.
	g, err := GeoMeanRow([]TableIRow{{Benchmark: "one",
		TimeOriginal: 100, TimeSPA: 300, TimeIPA: 110}})
	if err != nil {
		t.Fatal(err)
	}
	near := func(got, want float64) bool {
		return math.Abs(got-want) < 1e-6*math.Max(1, math.Abs(want))
	}
	if !near(g.TimeOriginal, 100) || !near(g.TimeSPA, 300) || !near(g.TimeIPA, 110) {
		t.Fatalf("single-row geo mean = %+v", g)
	}
	if !near(g.OverheadSPA, 200) || !near(g.OverheadIPA, 10) {
		t.Fatalf("single-row overheads = %+v", g)
	}
}

// TestMeasureParallelismIndependence: the same cell measured alone and as
// part of a parallel campaign yields identical numbers (no shared state
// between cells).
func TestMeasureParallelismIndependence(t *testing.T) {
	b, err := workloads.ByName("javac")
	if err != nil {
		t.Fatal(err)
	}
	alone, err := Measure(b, AgentIPA, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Parallelism = 8
	rows, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Benchmark != "javac" {
			continue
		}
		if r.NativePct != alone.Report.NativeFraction()*100 ||
			r.JNICalls != alone.Report.JNICalls ||
			r.NativeMethodCalls != alone.Report.NativeMethodCalls {
			t.Fatalf("campaign cell %+v != standalone measurement %+v", r, alone.Report)
		}
	}
}

// BenchmarkTableIParallel and BenchmarkTableISequential measure the
// wall-clock effect of the worker pool on the Table I campaign; on
// multi-core hardware the parallel variant should be several times
// faster at identical output.
func BenchmarkTableIParallel(b *testing.B) {
	cfg := testConfig()
	cfg.Parallelism = 0 // one worker per CPU
	for i := 0; i < b.N; i++ {
		if _, err := TableI(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableISequential(b *testing.B) {
	cfg := testConfig()
	cfg.Parallelism = 1
	for i := 0; i < b.N; i++ {
		if _, err := TableI(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
