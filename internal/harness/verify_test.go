package harness

import (
	"strings"
	"testing"
)

func TestVerifyShapePasses(t *testing.T) {
	rep, err := VerifyShape(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("shape verification failed:\n%s", rep.String())
	}
	if len(rep.Checks) != 9 {
		t.Fatalf("checks = %d, want 9", len(rep.Checks))
	}
	out := rep.String()
	if !strings.Contains(out, "PASS") || strings.Contains(out, "FAIL") {
		t.Fatalf("render:\n%s", out)
	}
}

func TestShapeReportRendersFailures(t *testing.T) {
	r := &ShapeReport{}
	r.add("claim A", true, "")
	r.add("claim B", false, "detail")
	if r.OK() {
		t.Fatal("OK with a failing check")
	}
	out := r.String()
	if !strings.Contains(out, "[FAIL] claim B — detail") {
		t.Fatalf("render:\n%s", out)
	}
}
