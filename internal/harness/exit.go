package harness

// The exit-code contract shared by the measurement CLIs (jvmsim, jprof,
// tables) and documented in docs/robustness.md. A caller scripting a
// campaign can distinguish "everything ran" from "the campaign finished
// but some cells failed" from "the run itself broke":
//
//	0 ExitComplete  every cell ran and every check passed
//	1 ExitFatal     the run could not complete (bad input, I/O failure,
//	                fail-fast cell error, failed scenario checks)
//	2 ExitUsage     flag/argument parse errors (flag package convention)
//	3 ExitPartial   the campaign completed gracefully but one or more
//	                cells failed after isolation and retries; the partial
//	                table marks each failed row
//	4 ExitFound     the adversarial scenario search (jvmsim search)
//	                completed and found at least one divergence — a
//	                "success" for the searcher but an alarm for CI, so it
//	                is distinct from both 0 and the failure codes
const (
	ExitComplete = 0
	ExitFatal    = 1
	ExitUsage    = 2
	ExitPartial  = 3
	ExitFound    = 4
)
