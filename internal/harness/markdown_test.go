package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteMarkdown(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 50
	rows1, err := TableI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	geo, err := GeoMeanRow(rows1)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := TableII(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMarkdown(&buf, rows1, geo, rows2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# Evaluation report",
		"## Table I",
		"## Table II",
		"| compress |",
		"| geom. mean |",
		"| jbb2005 |",
		"paper SPA",
		"ground truth %",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
	// Every JVM98 benchmark appears in Table I's time section.
	for _, name := range []string{"jess", "db", "javac", "mpegaudio", "mtrt", "jack"} {
		if !strings.Contains(out, "| "+name+" |") {
			t.Errorf("markdown missing row for %s", name)
		}
	}
}
