package harness

import (
	"context"
	"os"
	"testing"

	"repro/internal/jit"
	"repro/internal/scenarios"
	"repro/internal/telemetry"
)

// TestTelemetryDifferentialGolden is the never-in-payloads invariant at
// its sharpest: the paper tables at scale 8 with full telemetry enabled
// (span buffering AND the metrics registry) are byte-identical to the
// pre-telemetry golden on every engine × parallelism combination. The
// recorder is live — spans buffer, counters advance — yet not one byte
// of the canonical output moves.
func TestTelemetryDifferentialGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/paper_tables_scale8.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []jit.Engine{jit.EngineInterp, jit.EngineJIT, jit.EngineAuto} {
		for _, parallelism := range []int{1, 4} {
			tel := telemetry.New(true)
			cfg := DefaultConfig()
			cfg.Runs = 1
			cfg.Scale = 8
			cfg.Parallelism = parallelism
			cfg.Opts.Tier = engine
			cfg.Telemetry = tel
			rows1, err := TableI(cfg)
			if err != nil {
				t.Fatal(err)
			}
			geo, err := GeoMeanRow(rows1)
			if err != nil {
				t.Fatal(err)
			}
			t1, err := RenderTableI(rows1, geo)
			if err != nil {
				t.Fatal(err)
			}
			rows2, err := TableII(cfg)
			if err != nil {
				t.Fatal(err)
			}
			t2, err := RenderTableII(rows2)
			if err != nil {
				t.Fatal(err)
			}
			if got := t1 + "\n" + t2; got != string(golden) {
				t.Errorf("engine=%s parallelism=%d: telemetry-on tables diverged from golden:\n--- got ---\n%s--- want ---\n%s",
					engine, parallelism, got, golden)
			}
			if tel.EventCount() == 0 {
				t.Fatalf("engine=%s parallelism=%d: recorder buffered no spans — the differential proved nothing", engine, parallelism)
			}
		}
	}
}

// TestTelemetryCampaignOnOffIdentical runs the full scenario catalogue
// twice — recorder off (nil) and fully on — and asserts the rendered
// campaign is byte-identical, while the on-run's registry actually
// observed every cell.
func TestTelemetryCampaignOnOffIdentical(t *testing.T) {
	scns, err := scenarios.Profile("all")
	if err != nil {
		t.Fatal(err)
	}
	run := func(tel *telemetry.Recorder) string {
		cfg := testConfig()
		cfg.Parallelism = 4
		cfg.Telemetry = tel
		camp := Campaign{Scenarios: scns, Agents: []string{"none", "ipa"}, Config: cfg}
		res, err := camp.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		text, err := RenderCampaign(res)
		if err != nil {
			t.Fatal(err)
		}
		return text
	}
	off := run(nil)
	tel := telemetry.New(true)
	on := run(tel)
	if on != off {
		t.Fatalf("campaign output diverged with telemetry on:\n--- off ---\n%s--- on ---\n%s", off, on)
	}
	cells := uint64(0)
	for _, fam := range scenarios.Families() {
		cells += tel.Metrics().Counter(fam, telemetry.MetricCells)
	}
	if want := uint64(len(scns) * 2); cells != want {
		t.Fatalf("registry counted %d cells across families, want %d", cells, want)
	}
}

// BenchmarkCampaignTelemetryOff and BenchmarkCampaignTelemetryOn are the
// overhead pair benchtrend gates: the same full-catalogue campaign with
// the recorder nil vs fully live (spans + metrics). CI fails when the
// on/off wall-time ratio exceeds 1.05x.
func BenchmarkCampaignTelemetryOff(b *testing.B) {
	benchmarkCampaignTelemetry(b, false)
}

func BenchmarkCampaignTelemetryOn(b *testing.B) {
	benchmarkCampaignTelemetry(b, true)
}

func benchmarkCampaignTelemetry(b *testing.B, on bool) {
	scns, err := scenarios.Profile("all")
	if err != nil {
		b.Fatal(err)
	}
	cfg := testConfig()
	// Scale down the simulated work (span count is per cell, not per
	// instruction): the op stays short enough that CI's reduced benchtime
	// still gets a statistically stable iteration count, and the smaller
	// denominator makes the on/off ratio MORE sensitive to real per-cell
	// instrumentation cost, not less.
	cfg.Scale = 100
	cfg.Parallelism = 1
	camp := Campaign{Scenarios: scns, Agents: []string{"none"}, Config: cfg}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if on {
			camp.Config.Telemetry = telemetry.New(true)
		}
		if _, err := camp.Run(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}
