package harness

import (
	"fmt"
	"strings"
)

// ShapeReport is the outcome of verifying the paper's qualitative claims
// against a measured campaign — the reproduction's certificate. Each check
// is one sentence from Section V turned into a predicate.
type ShapeReport struct {
	Checks []ShapeCheck
}

// ShapeCheck is one verified claim.
type ShapeCheck struct {
	Claim string
	OK    bool
	Note  string
}

// OK reports whether every check passed.
func (r *ShapeReport) OK() bool {
	for _, c := range r.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// String renders the certificate.
func (r *ShapeReport) String() string {
	var b strings.Builder
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.OK {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s", mark, c.Claim)
		if c.Note != "" {
			fmt.Fprintf(&b, " — %s", c.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (r *ShapeReport) add(claim string, ok bool, note string) {
	r.Checks = append(r.Checks, ShapeCheck{Claim: claim, OK: ok, Note: note})
}

// VerifyShape runs the full campaign and checks every qualitative claim of
// the paper's evaluation against it:
//
//  1. SPA overhead is excessive (>800%) on every benchmark (Table I).
//  2. IPA overhead is moderate (0-25%) on every benchmark (Table I).
//  3. SPA overhead exceeds IPA's by at least 20x everywhere.
//  4. mtrt has the largest and db the smallest SPA overhead (call-density
//     ordering, Section V-A).
//  5. jack has the largest IPA overhead among JVM98 (transition-frequency
//     ordering).
//  6. Native execution stays within the paper's ~20% ceiling (Table II;
//     allow 25% for scaled runs).
//  7. compress, db, mpegaudio and mtrt spend <7% in native code
//     (the paper: "several benchmarks ... spend less than 5%").
//  8. jbb2005 makes more JNI calls than native method calls; all JVM98
//     benchmarks the reverse.
//  9. IPA's measurement tracks the uninstrumented ground truth within
//     4 percentage points on every benchmark.
func VerifyShape(cfg Config) (*ShapeReport, error) {
	cfg = cfg.normalized()
	rows1, err := TableI(cfg)
	if err != nil {
		return nil, err
	}
	rows2, err := TableII(cfg)
	if err != nil {
		return nil, err
	}
	r := &ShapeReport{}
	by1 := map[string]TableIRow{}
	for _, row := range rows1 {
		by1[row.Benchmark] = row
	}
	by2 := map[string]TableIIRow{}
	for _, row := range rows2 {
		by2[row.Benchmark] = row
	}

	// 1 + 2 + 3.
	ok1, ok2, ok3 := true, true, true
	var n1, n2, n3 []string
	for _, row := range rows1 {
		if row.OverheadSPA < 800 {
			ok1 = false
			n1 = append(n1, fmt.Sprintf("%s=%.0f%%", row.Benchmark, row.OverheadSPA))
		}
		if row.OverheadIPA < 0 || row.OverheadIPA > 25 {
			ok2 = false
			n2 = append(n2, fmt.Sprintf("%s=%.2f%%", row.Benchmark, row.OverheadIPA))
		}
		if row.OverheadIPA > 0 && row.OverheadSPA < 20*row.OverheadIPA {
			ok3 = false
			n3 = append(n3, row.Benchmark)
		}
	}
	r.add("SPA overhead excessive (>800%) everywhere", ok1, strings.Join(n1, ", "))
	r.add("IPA overhead moderate (0-25%) everywhere", ok2, strings.Join(n2, ", "))
	r.add("SPA overhead at least 20x IPA's everywhere", ok3, strings.Join(n3, ", "))

	// 4.
	okMax, okMin := true, true
	for name, row := range by1 {
		if name != "mtrt" && row.OverheadSPA >= by1["mtrt"].OverheadSPA {
			okMax = false
		}
		if name != "db" && row.OverheadSPA <= by1["db"].OverheadSPA {
			okMin = false
		}
	}
	r.add("mtrt worst / db best under SPA (call-density ordering)", okMax && okMin, "")

	// 5.
	okJack := true
	for _, name := range []string{"compress", "jess", "db", "javac", "mpegaudio", "mtrt"} {
		if by1["jack"].OverheadIPA <= by1[name].OverheadIPA {
			okJack = false
		}
	}
	r.add("jack largest IPA overhead among JVM98", okJack, "")

	// 6 + 7.
	okCeil, okLight := true, true
	var n6, n7 []string
	for _, row := range rows2 {
		if row.NativePct > 25 {
			okCeil = false
			n6 = append(n6, fmt.Sprintf("%s=%.1f%%", row.Benchmark, row.NativePct))
		}
	}
	for _, name := range []string{"compress", "db", "mpegaudio", "mtrt"} {
		if by2[name].NativePct >= 7 {
			okLight = false
			n7 = append(n7, fmt.Sprintf("%s=%.1f%%", name, by2[name].NativePct))
		}
	}
	r.add("native execution within the ~20% ceiling", okCeil, strings.Join(n6, ", "))
	r.add("light group (compress, db, mpegaudio, mtrt) under 7%", okLight, strings.Join(n7, ", "))

	// 8.
	okJBB := by2["jbb2005"].JNICalls > by2["jbb2005"].NativeMethodCalls
	okJVM98 := true
	for _, name := range []string{"compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack"} {
		if by2[name].JNICalls >= by2[name].NativeMethodCalls {
			okJVM98 = false
		}
	}
	r.add("jbb2005 JNI>native calls; JVM98 the reverse", okJBB && okJVM98, "")

	// 9.
	okAcc := true
	var n9 []string
	for _, row := range rows2 {
		d := row.NativePct - row.TruthNativePct
		if d < -4 || d > 4 {
			okAcc = false
			n9 = append(n9, fmt.Sprintf("%s=%+.1fpp", row.Benchmark, d))
		}
	}
	r.add("IPA tracks ground truth within 4pp", okAcc, strings.Join(n9, ", "))

	return r, nil
}
