package harness

import (
	"context"
	"os"
	"reflect"
	"testing"

	"repro/internal/jit"
	"repro/internal/scenarios"
)

// gcConfig is the gcpressure campaign configuration the differential and
// golden suites share: scale 8 (the scale the acceptance criteria pin),
// one repetition, deterministic cells.
func gcConfig() Config {
	c := DefaultConfig()
	c.Runs = 1
	c.Scale = 8
	return c
}

// gcCampaign measures the whole gcpressure family under the given
// configuration, with the uninstrumented and allocation-profiling agents
// (the family's natural pair: ground truth plus the memory-side agent).
func gcCampaign(t *testing.T, cfg Config) (*CampaignResult, string) {
	t.Helper()
	scns, err := scenarios.Profile("gcpressure")
	if err != nil {
		t.Fatal(err)
	}
	camp := Campaign{Scenarios: scns, Agents: []string{"none", "aprof"}, Config: cfg}
	res, err := camp.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i].M != nil {
			res.Rows[i].M.Tier = jit.Stats{}
		}
	}
	text, err := RenderCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	return res, text
}

// TestGCPressureDifferentialScale8 is the gcpressure acceptance
// criterion: at scale 8 the family reports nonzero collections, and the
// campaign — rows, reports, ground truth, GC ledgers and check verdicts —
// is byte-identical between the fast and instrumented interpreter loops,
// between -engine=interp, jit and auto, and between sequential and
// parallel cell execution.
func TestGCPressureDifferentialScale8(t *testing.T) {
	base := gcConfig()
	base.Parallelism = 1
	baseRes, baseText := gcCampaign(t, base)

	if len(baseRes.CheckFailures) != 0 {
		t.Fatalf("gcpressure checks failed at scale 8: %v", baseRes.CheckFailures)
	}
	for _, r := range baseRes.Rows {
		if r.M.GC.Collections() == 0 {
			t.Fatalf("%s/%s: no collections at scale 8", r.Scenario.Name(), r.AgentName)
		}
	}

	for _, tc := range []struct {
		name   string
		mutate func(*Config)
	}{
		{"instrumented-loop", func(c *Config) { c.Opts.ForceInstrumentedLoop = true }},
		{"engine-jit", func(c *Config) { c.Opts.Tier = jit.EngineJIT }},
		{"engine-auto", func(c *Config) { c.Opts.Tier = jit.EngineAuto }},
		{"parallel-8", func(c *Config) { c.Parallelism = 8 }},
		{"engine-jit-parallel-8", func(c *Config) { c.Opts.Tier = jit.EngineJIT; c.Parallelism = 8 }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := gcConfig()
			cfg.Parallelism = 1
			tc.mutate(&cfg)
			res, text := gcCampaign(t, cfg)
			if text != baseText {
				t.Fatalf("campaign diverged from baseline:\n--- base\n%s\n--- %s\n%s", baseText, tc.name, text)
			}
			if !reflect.DeepEqual(res.Rows, baseRes.Rows) {
				t.Fatal("rows diverged beyond rendering")
			}
		})
	}
}

// TestGCPressureCampaignGolden pins the rendered gcpressure campaign —
// GC columns included — to a committed golden, the memory-subsystem
// counterpart of the paper-tables golden.
func TestGCPressureCampaignGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/gcpressure_scale8.golden")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gcConfig()
	cfg.Parallelism = 1
	_, text := gcCampaign(t, cfg)
	if text != string(golden) {
		t.Errorf("gcpressure campaign diverged from golden:\n--- got ---\n%s--- want ---\n%s", text, golden)
	}
}

// BenchmarkCampaignGCPressure measures the whole gcpressure family —
// bounded nurseries, tenure traffic, the aprof agent — end to end; the
// heap/GC row of the PR-over-PR benchmark ledger.
func BenchmarkCampaignGCPressure(b *testing.B) {
	scns, err := scenarios.Profile("gcpressure")
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Runs = 1
	cfg.Scale = 8
	camp := Campaign{Scenarios: scns, Agents: []string{"none", "aprof"}, Config: cfg}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := camp.Run(context.Background(), nil); err != nil {
			b.Fatal(err)
		}
	}
}
