package harness

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/jit"
	"repro/internal/scenarios"
)

// engineConfig returns the test campaign configuration pinned to one
// execution engine.
func engineConfig(engine jit.Engine, parallelism int) Config {
	cfg := testConfig()
	cfg.Parallelism = parallelism
	cfg.Opts.Tier = engine
	return cfg
}

// stripTier clears the host-side tier bookkeeping from campaign rows:
// it is the one field that legitimately differs between engines, and
// everything else must be byte-identical.
func stripTier(res *CampaignResult) {
	for i := range res.Rows {
		if res.Rows[i].M != nil {
			res.Rows[i].M.Tier = jit.Stats{}
		}
	}
}

// TestEngineDifferentialAllFamilies is the whole-system cross-engine
// guarantee: every scenario family — the paper profile and each
// synthetic family, tier-sensitive included — measured under none, SPA
// and IPA, produces byte-identical campaign rows, reports, ground truth
// and check verdicts on -engine=interp, jit and auto, sequentially and
// in parallel.
func TestEngineDifferentialAllFamilies(t *testing.T) {
	scns, err := scenarios.Profile("all")
	if err != nil {
		t.Fatal(err)
	}
	run := func(engine jit.Engine, parallelism int) (*CampaignResult, string) {
		camp := Campaign{Scenarios: scns, Config: engineConfig(engine, parallelism)}
		res, err := camp.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		stripTier(res)
		text, err := RenderCampaign(res)
		if err != nil {
			t.Fatal(err)
		}
		return res, text
	}
	baseRes, baseText := run(jit.EngineInterp, 1)
	for _, tc := range []struct {
		name        string
		engine      jit.Engine
		parallelism int
	}{
		{"jit-sequential", jit.EngineJIT, 1},
		{"jit-parallel", jit.EngineJIT, 8},
		{"auto-sequential", jit.EngineAuto, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, text := run(tc.engine, tc.parallelism)
			if text != baseText {
				t.Fatalf("rendered campaign diverged from interp baseline:\n--- interp\n%s\n--- %s\n%s", baseText, tc.name, text)
			}
			if !reflect.DeepEqual(res.Rows, baseRes.Rows) {
				t.Fatal("campaign rows diverged from interp baseline beyond rendering")
			}
			if !reflect.DeepEqual(res.CheckFailures, baseRes.CheckFailures) {
				t.Fatalf("check verdicts diverged: %v vs %v", res.CheckFailures, baseRes.CheckFailures)
			}
		})
	}
}

// TestEngineDifferentialScale8 re-runs the cross-engine guarantee at
// scale 8 — several times the work of the regular test configuration, so
// every scenario's hot loops cross the OSR threshold and every call-heavy
// phase runs long enough to exercise inline sites — and asserts the full
// campaign (cycles, instruction counts, reports, check verdicts) is
// byte-identical across -engine=interp|jit|auto, sequentially and with 8
// parallel workers.
func TestEngineDifferentialScale8(t *testing.T) {
	scns, err := scenarios.Profile("all")
	if err != nil {
		t.Fatal(err)
	}
	run := func(engine jit.Engine, parallelism int) (*CampaignResult, string) {
		cfg := engineConfig(engine, parallelism)
		cfg.Scale = 8
		camp := Campaign{Scenarios: scns, Agents: []string{"none"}, Config: cfg}
		res, err := camp.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		stripTier(res)
		text, err := RenderCampaign(res)
		if err != nil {
			t.Fatal(err)
		}
		return res, text
	}
	baseRes, baseText := run(jit.EngineInterp, 1)
	for _, tc := range []struct {
		name        string
		engine      jit.Engine
		parallelism int
	}{
		{"interp-parallel", jit.EngineInterp, 8},
		{"jit-sequential", jit.EngineJIT, 1},
		{"jit-parallel", jit.EngineJIT, 8},
		{"auto-sequential", jit.EngineAuto, 1},
		{"auto-parallel", jit.EngineAuto, 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, text := run(tc.engine, tc.parallelism)
			if text != baseText {
				t.Fatalf("scale-8 campaign diverged from interp baseline:\n--- interp\n%s\n--- %s\n%s", baseText, tc.name, text)
			}
			if !reflect.DeepEqual(res.Rows, baseRes.Rows) {
				t.Fatal("scale-8 campaign rows diverged from interp baseline beyond rendering")
			}
			if !reflect.DeepEqual(res.CheckFailures, baseRes.CheckFailures) {
				t.Fatalf("check verdicts diverged: %v vs %v", res.CheckFailures, baseRes.CheckFailures)
			}
		})
	}
}

// TestEngineDifferentialTableI: the paper's Table I — the headline
// artifact — is identical under the jit engine, including the rendered
// text.
func TestEngineDifferentialTableI(t *testing.T) {
	render := func(engine jit.Engine) string {
		rows, err := TableI(engineConfig(engine, 0))
		if err != nil {
			t.Fatal(err)
		}
		geo, err := GeoMeanRow(rows)
		if err != nil {
			t.Fatal(err)
		}
		text, err := RenderTableI(rows, geo)
		if err != nil {
			t.Fatal(err)
		}
		return text
	}
	if interp, jitted := render(jit.EngineInterp), render(jit.EngineJIT); interp != jitted {
		t.Fatalf("Table I diverged across engines:\n--- interp\n%s\n--- jit\n%s", interp, jitted)
	}
}

// TestWarmupInvariance: warmup repetitions are simulation-invisible —
// the measured values match a warmup-free run exactly — while still
// driving the tier through promotion, which the stats prove.
func TestWarmupInvariance(t *testing.T) {
	sc, err := scenarios.Get("tier-warmup")
	if err != nil {
		t.Fatal(err)
	}
	cold := engineConfig(jit.EngineJIT, 1)
	warm := cold
	warm.Warmup = 2
	mCold, err := MeasureScenario(context.Background(), sc, "none", cold)
	if err != nil {
		t.Fatal(err)
	}
	mWarm, err := MeasureScenario(context.Background(), sc, "none", warm)
	if err != nil {
		t.Fatal(err)
	}
	if mCold.MedianCycles != mWarm.MedianCycles || mCold.Truth != mWarm.Truth ||
		mCold.MedianThroughput != mWarm.MedianThroughput {
		t.Fatalf("warmup changed measured values:\ncold %+v\nwarm %+v", mCold, mWarm)
	}
	if mWarm.Tier.MethodsCompiled == 0 || mWarm.Tier.CompiledFrames == 0 {
		t.Fatalf("tier-warmup scenario never promoted under -engine=jit: %+v", mWarm.Tier)
	}
	// Negative warmup normalizes to zero rather than erroring.
	neg := cold
	neg.Warmup = -3
	if _, err := MeasureScenario(context.Background(), sc, "none", neg); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkTableISequentialJIT and BenchmarkTableIParallelJIT are the
// Table I campaign benchmarks on the template tier; their ratio to the
// engine=interp variants above is the tier's end-to-end speedup at
// byte-identical output.
func BenchmarkTableISequentialJIT(b *testing.B) {
	cfg := testConfig()
	cfg.Parallelism = 1
	cfg.Opts.Tier = jit.EngineJIT
	for i := 0; i < b.N; i++ {
		if _, err := TableI(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIParallelJIT(b *testing.B) {
	cfg := testConfig()
	cfg.Parallelism = 0 // one worker per CPU
	cfg.Opts.Tier = jit.EngineJIT
	for i := 0; i < b.N; i++ {
		if _, err := TableI(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCampaign measures the full scenario catalogue — every family,
// every built-in scenario — under the uninstrumented agent, once per
// engine, the campaign-scale wall-clock number the roadmap tracks.
func BenchmarkCampaign(b *testing.B) {
	scns, err := scenarios.Profile("all")
	if err != nil {
		b.Fatal(err)
	}
	for _, engine := range []jit.Engine{jit.EngineInterp, jit.EngineJIT} {
		b.Run("engine="+engine.String(), func(b *testing.B) {
			cfg := testConfig()
			cfg.Parallelism = 1
			cfg.Opts.Tier = engine
			camp := Campaign{Scenarios: scns, Agents: []string{"none"}, Config: cfg}
			for i := 0; i < b.N; i++ {
				if _, err := camp.Run(context.Background(), nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCampaignByFamily breaks the campaign number down per scenario
// family and engine, the view that shows where the template tier pays
// (loop-dominated families) and where it is parity (effect- and
// invoke-dominated ones).
func BenchmarkCampaignByFamily(b *testing.B) {
	for _, fam := range scenarios.Families() {
		scns, err := scenarios.Profile(fam)
		if err != nil {
			b.Fatal(err)
		}
		for _, engine := range []jit.Engine{jit.EngineInterp, jit.EngineJIT} {
			b.Run(fam+"/engine="+engine.String(), func(b *testing.B) {
				cfg := testConfig()
				cfg.Parallelism = 1
				cfg.Opts.Tier = engine
				camp := Campaign{Scenarios: scns, Agents: []string{"none"}, Config: cfg}
				for i := 0; i < b.N; i++ {
					if _, err := camp.Run(context.Background(), nil); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
