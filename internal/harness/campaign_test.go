package harness

import (
	"context"
	"errors"
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/scenarios"
	"repro/internal/workloads"
)

// TestPaperTablesGolden pins the acceptance criterion of the scenario
// refactor: the rendered Table I + Table II output at scale 8 is
// byte-identical to the pre-refactor harness (the golden was captured
// before the workload layer moved to phases), sequential and parallel.
func TestPaperTablesGolden(t *testing.T) {
	golden, err := os.ReadFile("testdata/paper_tables_scale8.golden")
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 4} {
		cfg := DefaultConfig()
		cfg.Runs = 1
		cfg.Scale = 8
		cfg.Parallelism = parallelism
		rows1, err := TableI(cfg)
		if err != nil {
			t.Fatal(err)
		}
		geo, err := GeoMeanRow(rows1)
		if err != nil {
			t.Fatal(err)
		}
		t1, err := RenderTableI(rows1, geo)
		if err != nil {
			t.Fatal(err)
		}
		rows2, err := TableII(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t2, err := RenderTableII(rows2)
		if err != nil {
			t.Fatal(err)
		}
		got := t1 + "\n" + t2
		if got != string(golden) {
			t.Errorf("parallelism %d: tables diverged from the pre-refactor golden:\n--- got ---\n%s--- want ---\n%s",
				parallelism, got, golden)
		}
	}
}

// campaignTestConfig keeps campaign tests fast.
func campaignTestConfig() Config {
	cfg := DefaultConfig()
	cfg.Runs = 1
	cfg.Scale = 25
	return cfg
}

// TestCampaignAllFamilies: the whole registry (paper + the four synthetic
// families) runs clean under none+ipa, rows arrive scenario-major in
// registry order, and every scenario's expected-value checks pass.
func TestCampaignAllFamilies(t *testing.T) {
	scns, err := scenarios.Profile("all")
	if err != nil {
		t.Fatal(err)
	}
	camp := Campaign{Scenarios: scns, Agents: []string{"none", "ipa"}, Config: campaignTestConfig()}
	var streamed []string
	res, err := camp.Run(context.Background(), func(r CampaignRow) error {
		streamed = append(streamed, r.Scenario.Name()+"/"+r.AgentName)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*len(scns) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), 2*len(scns))
	}
	if len(streamed) != len(res.Rows) {
		t.Fatalf("streamed %d rows, returned %d", len(streamed), len(res.Rows))
	}
	for i, r := range res.Rows {
		wantKey := scns[i/2].Name() + "/" + []string{"none", "ipa"}[i%2]
		if got := r.Scenario.Name() + "/" + r.AgentName; got != wantKey {
			t.Fatalf("row %d = %s, want %s", i, got, wantKey)
		}
		if streamed[i] != wantKey {
			t.Fatalf("streamed[%d] = %s, want %s (out of order)", i, streamed[i], wantKey)
		}
		if r.M == nil || r.M.MedianCycles <= 0 {
			t.Fatalf("row %s has no measurement", wantKey)
		}
	}
	if len(res.CheckFailures) != 0 {
		t.Fatalf("check failures: %v", res.CheckFailures)
	}
	text, err := RenderCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"gc-churn", "exc-storm", "chain-abyss", "contend-8-native", "checks: PASS"} {
		if !strings.Contains(text, want) {
			t.Errorf("campaign render missing %q", want)
		}
	}
}

// TestCampaignParallelMatchesSequential extends the determinism guarantee
// to arbitrary campaigns: parallel and sequential runs produce identical
// rendered reports.
func TestCampaignParallelMatchesSequential(t *testing.T) {
	scns, err := scenarios.Profile("exception-heavy")
	if err != nil {
		t.Fatal(err)
	}
	render := func(parallelism int) string {
		cfg := campaignTestConfig()
		cfg.Parallelism = parallelism
		res, err := Campaign{Scenarios: scns, Config: cfg}.Run(context.Background(), nil)
		if err != nil {
			t.Fatal(err)
		}
		text, err := RenderCampaign(res)
		if err != nil {
			t.Fatal(err)
		}
		return text
	}
	if render(1) != render(8) {
		t.Fatal("campaign output differs between sequential and parallel execution")
	}
}

// TestCampaignEmitError: a rejected row emission aborts the campaign.
func TestCampaignEmitError(t *testing.T) {
	scns, err := scenarios.Profile("gc-heavy")
	if err != nil {
		t.Fatal(err)
	}
	reject := errors.New("row rejected")
	_, err = Campaign{Scenarios: scns, Agents: []string{"none"}, Config: campaignTestConfig()}.
		Run(context.Background(), func(CampaignRow) error { return reject })
	if !errors.Is(err, reject) {
		t.Fatalf("err = %v, want emit error", err)
	}
}

// TestEvaluateChecks exercises every check kind against a synthetic
// scenario, both passing and failing.
func TestEvaluateChecks(t *testing.T) {
	sc := scenarios.Scenario{
		Family: "custom",
		Workload: workloads.Workload{
			Name: "checks-w", ClassName: "t/Checks", OuterIters: 200,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseBytecode, Calls: 4, Work: 4},
				{Kind: workloads.PhaseNative, Calls: 2, Work: 30, JNIEvery: 4, CallbackWork: 3},
			},
		},
		Checks: scenarios.Checks{
			MinNativePct: 0.1, MaxNativePct: 60,
			MinNativeCalls: 2, MinJNICalls: 1, MinThreads: 1,
			MaxIPAOverheadPct: 50,
		},
	}
	cfg := campaignTestConfig()
	res, err := Campaign{Scenarios: []scenarios.Scenario{sc}, Config: cfg}.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CheckFailures) != 0 {
		t.Fatalf("well-behaved scenario failed checks: %v", res.CheckFailures)
	}
	// Count minimums are declared at full size; a heavily scaled run must
	// scale them down rather than fail a healthy scenario.
	deep := campaignTestConfig()
	deep.Scale = 100000 // one iteration per run
	res, err = Campaign{Scenarios: []scenarios.Scenario{sc}, Config: deep}.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CheckFailures) != 0 {
		t.Fatalf("scaled-down run failed full-size count bounds: %v", res.CheckFailures)
	}
	// A bound equal to the exact full-size count must survive a scale
	// that does not divide the iteration count: the workload floors
	// iterations, so the bound must floor too.
	tight := scenarios.Scenario{
		Family: "custom",
		Workload: workloads.Workload{
			Name: "tight-bound", ClassName: "t/Tight", OuterIters: 10,
			Phases: []workloads.Phase{{Kind: workloads.PhaseNative, Calls: 1, Work: 5}},
		},
		Checks: scenarios.Checks{MinNativeCalls: 10},
	}
	odd := campaignTestConfig()
	odd.Scale = 4 // floor(10/4) = 2 iterations -> 2 native calls
	res, err = Campaign{Scenarios: []scenarios.Scenario{tight}, Agents: []string{"none"}, Config: odd}.
		Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CheckFailures) != 0 {
		t.Fatalf("exact full-size bound failed at non-dividing scale: %v", res.CheckFailures)
	}
	// Impossible bounds must each produce a failure line naming the scenario.
	strict := sc
	strict.Checks = scenarios.Checks{
		MinNativePct: 99, MinNativeCalls: 1 << 40, MinJNICalls: 1 << 40,
		MinThreads: 32, MaxIPAOverheadPct: 0.000001,
	}
	res, err = Campaign{Scenarios: []scenarios.Scenario{strict}, Config: cfg}.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CheckFailures) != 5 {
		t.Fatalf("failures = %v, want all 5 bounds violated", res.CheckFailures)
	}
	for _, f := range res.CheckFailures {
		if !strings.HasPrefix(f, "checks-w: ") {
			t.Errorf("failure %q does not name the scenario", f)
		}
	}
}

// TestRenderTableHardening: empty and non-finite row sets are descriptive
// errors, never NaN-bearing tables or panics.
func TestRenderTableHardening(t *testing.T) {
	if _, err := RenderTableI(nil, TableIRow{}); err == nil {
		t.Fatal("RenderTableI(nil) succeeded")
	}
	nan := []TableIRow{{Benchmark: "bad", OverheadSPA: math.NaN()}}
	if _, err := RenderTableI(nan, TableIRow{Benchmark: "geom. mean"}); err == nil ||
		!strings.Contains(err.Error(), "bad") {
		t.Fatalf("NaN row rendered: %v", err)
	}
	if _, err := RenderTableII(nil); err == nil {
		t.Fatal("RenderTableII(nil) succeeded")
	}
	if _, err := RenderTableII([]TableIIRow{{Benchmark: "bad", NativePct: math.NaN()}}); err == nil {
		t.Fatal("NaN Table II row rendered")
	}
	if _, err := RenderCampaign(&CampaignResult{}); err == nil {
		t.Fatal("empty campaign rendered")
	}
}
