package harness

import (
	"reflect"
	"testing"

	"repro/internal/agents/ipa"
	"repro/internal/agents/sampler"
	"repro/internal/agents/spa"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestFastLoopDifferentialAllWorkloads is the whole-system differential
// guarantee behind the dual dispatch loops: every suite workload, run
// uninstrumented and under SPA and IPA, produces identical ground-truth
// cycles, instruction counts, results and agent reports whether the
// interpreter uses the fast loop (default) or the fully instrumented
// loop (Options.ForceInstrumentedLoop). The instrumented loop keeps the
// historical per-instruction sequence, so this pins the fast path to the
// seed semantics bit-for-bit.
func TestFastLoopDifferentialAllWorkloads(t *testing.T) {
	agents := map[string]func() core.Agent{
		"none": func() core.Agent { return nil },
		"SPA":  func() core.Agent { return spa.New() },
		"IPA":  func() core.Agent { return ipa.New() },
	}
	for _, bench := range workloads.Suite() {
		spec := bench.Spec.Scale(50)
		for name, mk := range agents {
			t.Run(spec.Name+"/"+name, func(t *testing.T) {
				run := func(force bool) *core.RunResult {
					prog, err := workloads.Build(spec)
					if err != nil {
						t.Fatal(err)
					}
					opts := vm.DefaultOptions()
					opts.ForceInstrumentedLoop = force
					res, err := core.Run(prog, mk(), opts)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				fast := run(false)
				slow := run(true)
				if rep := difftest.Diff(spec.Name, "fast", "instrumented",
					difftest.FromRun(fast, nil), difftest.FromRun(slow, nil)); rep.Diverged() {
					t.Error(rep)
				}
				// Obs summarizes the report; the per-thread rows must also
				// match exactly.
				if !reflect.DeepEqual(fast.Report, slow.Report) {
					t.Errorf("agent report diverged:\nfast: %+v\ninstrumented: %+v", fast.Report, slow.Report)
				}
			})
		}
	}
}

// TestFastLoopDifferentialSampler: with an active sampling hook both runs
// use the instrumented loop, so forcing it must change nothing — the
// selection logic itself is part of the contract.
func TestFastLoopDifferentialSampler(t *testing.T) {
	b, err := workloads.ByName("javac")
	if err != nil {
		t.Fatal(err)
	}
	spec := b.Spec.Scale(50)
	run := func(force bool) *core.RunResult {
		prog, err := workloads.Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		opts := vm.DefaultOptions()
		opts.SampleInterval = 2000
		opts.SampleCost = 20
		opts.ForceInstrumentedLoop = force
		res, err := core.Run(prog, sampler.New(), opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(false)
	slow := run(true)
	if rep := difftest.Diff("javac/sampler", "fast", "forced",
		difftest.FromRun(fast, nil), difftest.FromRun(slow, nil)); rep.Diverged() {
		t.Fatalf("sampler run diverged:\n%s", rep)
	}
}
