package harness

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

// testConfig scales the suite down so the full campaign stays fast.
func testConfig() Config {
	c := DefaultConfig()
	c.Runs = 1
	c.Scale = 25
	return c
}

func TestAgentKindString(t *testing.T) {
	if AgentNone.String() != "original" || AgentSPA.String() != "SPA" || AgentIPA.String() != "IPA" {
		t.Fatal("AgentKind names wrong")
	}
}

func TestMeasureSingleBenchmark(t *testing.T) {
	b, err := workloads.ByName("compress")
	if err != nil {
		t.Fatal(err)
	}
	m, err := Measure(b, AgentIPA, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.MedianCycles <= 0 {
		t.Fatalf("median cycles = %f", m.MedianCycles)
	}
	if m.Report == nil || m.Report.AgentName != "IPA" {
		t.Fatalf("report = %+v", m.Report)
	}
}

func TestMeasureMedianOfRuns(t *testing.T) {
	b, err := workloads.ByName("mtrt")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Runs = 3
	m, err := Measure(b, AgentNone, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m.Runs != 3 {
		t.Fatalf("runs = %d", m.Runs)
	}
	// Deterministic simulator: the median equals a single run.
	single, err := Measure(b, AgentNone, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.MedianCycles != single.MedianCycles {
		t.Fatalf("median over 3 deterministic runs %f != single %f",
			m.MedianCycles, single.MedianCycles)
	}
}

// TestTableIShape verifies the central claims of Table I hold in the
// reproduction: SPA overhead is orders of magnitude above IPA's for every
// benchmark, and both are positive.
func TestTableIShape(t *testing.T) {
	rows, err := TableI(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		// The paper's smallest SPA overhead is db's 1,527%; scaled-down
		// test runs land somewhat lower because JIT warmup occupies a
		// larger share of the shorter baseline.
		if r.OverheadSPA < 800 {
			t.Errorf("%s: SPA overhead %.0f%% below 800%%", r.Benchmark, r.OverheadSPA)
		}
		if r.OverheadIPA < 0 || r.OverheadIPA > 60 {
			t.Errorf("%s: IPA overhead %.2f%% outside [0,60]", r.Benchmark, r.OverheadIPA)
		}
		if r.OverheadSPA < 20*r.OverheadIPA {
			t.Errorf("%s: SPA/IPA overhead ratio too small (%.0f vs %.2f)",
				r.Benchmark, r.OverheadSPA, r.OverheadIPA)
		}
	}
	// JBB row uses the throughput metric.
	last := rows[len(rows)-1]
	if !last.Throughput || last.Benchmark != "jbb2005" {
		t.Fatalf("last row = %+v, want jbb2005 throughput row", last)
	}
	if last.ThroughputOriginal <= last.ThroughputSPA {
		t.Error("jbb2005: SPA throughput not below original")
	}
}

// TestTableIOrderingShape: the paper's extremes — mtrt has the largest SPA
// overhead and db the smallest; jack has the largest IPA overhead among
// JVM98.
func TestTableIOrderingShape(t *testing.T) {
	rows, err := TableI(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]TableIRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
	}
	for _, name := range []string{"jess", "db", "javac", "compress", "jack"} {
		if byName["mtrt"].OverheadSPA <= byName[name].OverheadSPA {
			t.Errorf("SPA overhead: mtrt (%.0f%%) not above %s (%.0f%%)",
				byName["mtrt"].OverheadSPA, name, byName[name].OverheadSPA)
		}
		if name != "db" && byName["db"].OverheadSPA >= byName[name].OverheadSPA {
			t.Errorf("SPA overhead: db (%.0f%%) not below %s (%.0f%%)",
				byName["db"].OverheadSPA, name, byName[name].OverheadSPA)
		}
	}
	for _, name := range []string{"jess", "db", "mtrt", "mpegaudio"} {
		if byName["jack"].OverheadIPA <= byName[name].OverheadIPA {
			t.Errorf("IPA overhead: jack (%.2f%%) not above %s (%.2f%%)",
				byName["jack"].OverheadIPA, name, byName[name].OverheadIPA)
		}
	}
}

func TestGeoMeanRow(t *testing.T) {
	rows, err := TableI(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	geo, err := GeoMeanRow(rows)
	if err != nil {
		t.Fatal(err)
	}
	if geo.Benchmark != "geom. mean" {
		t.Fatalf("geo row = %+v", geo)
	}
	if geo.OverheadSPA < 1000 || geo.OverheadIPA > 60 {
		t.Fatalf("geo overheads SPA=%.0f%% IPA=%.2f%% out of shape",
			geo.OverheadSPA, geo.OverheadIPA)
	}
}

// TestTableIIShape verifies the Table II reproduction: native execution
// stays within the paper's 20%-ish ceiling, measured fractions track the
// ground truth, and the call-count orderings match the paper.
func TestTableIIShape(t *testing.T) {
	rows, err := TableII(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	byName := map[string]TableIIRow{}
	for _, r := range rows {
		byName[r.Benchmark] = r
		// Scaled-down runs shift JIT warmup shares upward, so the test
		// ceiling is looser than the paper's 20%; the full-scale tables
		// land at the paper's levels.
		if r.NativePct < 0 || r.NativePct > 32 {
			t.Errorf("%s: native%% = %.2f outside [0,32]", r.Benchmark, r.NativePct)
		}
		diff := r.NativePct - r.TruthNativePct
		if diff < -4 || diff > 4 {
			t.Errorf("%s: measured %.2f%% vs truth %.2f%% (|diff|>4pp)",
				r.Benchmark, r.NativePct, r.TruthNativePct)
		}
	}
	// Orderings from the paper: javac and jack are the native-heavy pair;
	// db, mpegaudio and mtrt the light group.
	for _, heavy := range []string{"javac", "jack"} {
		for _, light := range []string{"db", "mpegaudio", "mtrt", "compress", "jess"} {
			if byName[heavy].NativePct <= byName[light].NativePct {
				t.Errorf("native%%: %s (%.2f) not above %s (%.2f)",
					heavy, byName[heavy].NativePct, light, byName[light].NativePct)
			}
		}
	}
	// JBB2005 makes more JNI calls than native method calls; JVM98 rows
	// are the other way around.
	if byName["jbb2005"].JNICalls <= byName["jbb2005"].NativeMethodCalls {
		t.Error("jbb2005: JNI calls not above native method calls")
	}
	for _, n := range []string{"compress", "jess", "db", "javac", "mpegaudio", "mtrt", "jack"} {
		if byName[n].JNICalls >= byName[n].NativeMethodCalls {
			t.Errorf("%s: JNI calls (%d) not below native calls (%d)",
				n, byName[n].JNICalls, byName[n].NativeMethodCalls)
		}
	}
}

func TestRenderTables(t *testing.T) {
	rows, err := TableI(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	geo, err := GeoMeanRow(rows)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := RenderTableI(rows, geo)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE I", "compress", "geom. mean", "jbb2005", "overhead SPA"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I render missing %q", want)
		}
	}
	rows2, err := TableII(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := RenderTableII(rows2)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"TABLE II", "% native execution", "JNI calls", "jack"} {
		if !strings.Contains(t2, want) {
			t.Errorf("Table II render missing %q", want)
		}
	}
}

func TestConfigNormalization(t *testing.T) {
	c := Config{Runs: 0, Scale: -2}.normalized()
	if c.Runs != 1 || c.Scale != 1 {
		t.Fatalf("normalized = %+v", c)
	}
}
