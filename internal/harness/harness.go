// Package harness drives the Section V evaluation: it runs every suite
// benchmark uninstrumented, under SPA, and under IPA; aggregates repeated
// runs with the paper's median-of-N rule; computes the overhead formulas;
// and renders Table I (execution time and profiling overhead) and Table II
// (profiling statistics) in the paper's layout.
//
// The campaign is a matrix of measurement cells — benchmark × agent
// configuration — and every cell is an independent VM invocation, so the
// harness executes them on the internal/runner worker pool. Cell results
// are deterministic and returned in submission order, which makes a
// parallel campaign byte-identical to a sequential one (Config.Parallelism
// = 1); only wall-clock time changes.
package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/agents/registry"
	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// AgentKind selects the profiling configuration of a run.
type AgentKind int

// The three Table I configurations.
const (
	// AgentNone runs without any profiling agent.
	AgentNone AgentKind = iota
	// AgentSPA runs under the Simple Profiling Agent.
	AgentSPA
	// AgentIPA runs under the Improved Profiling Agent.
	AgentIPA
)

// String names the configuration.
func (k AgentKind) String() string {
	switch k {
	case AgentSPA:
		return "SPA"
	case AgentIPA:
		return "IPA"
	default:
		return "original"
	}
}

// registryName maps the kind to its internal/agents/registry name.
func (k AgentKind) registryName() string {
	switch k {
	case AgentSPA:
		return "spa"
	case AgentIPA:
		return "ipa"
	default:
		return "none"
	}
}

// newAgent builds a fresh agent for one run; agents are single-use.
func newAgent(k AgentKind) core.Agent {
	agent, err := registry.New(k.registryName(), registry.Config{})
	if err != nil {
		// The three kinds are always registered; reaching this is a
		// programming error, not a runtime condition.
		panic(err)
	}
	return agent
}

// Config parameterizes an evaluation campaign.
type Config struct {
	// Runs is the number of repetitions whose median is reported. The
	// paper uses 15; the simulator is deterministic, so the median
	// machinery matters only when options vary, but it is preserved for
	// methodological fidelity.
	Runs int
	// Scale divides every benchmark's outer iteration count (1 = the
	// full calibrated size).
	Scale int
	// Parallelism is the number of measurement cells run concurrently,
	// each on its own isolated VM. 1 reproduces the sequential pipeline;
	// values below 1 mean runner.DefaultParallelism(). Output is
	// identical for every value — cells are deterministic and results
	// are assembled in submission order.
	Parallelism int
	// Opts is the VM cost model.
	Opts vm.Options
}

// DefaultConfig returns the configuration used to regenerate the tables.
func DefaultConfig() Config {
	return Config{Runs: 3, Scale: 1, Parallelism: runner.DefaultParallelism(), Opts: vm.DefaultOptions()}
}

func (c Config) normalized() Config {
	if c.Runs < 1 {
		c.Runs = 1
	}
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = runner.DefaultParallelism()
	}
	return c
}

// runnerOptions maps the campaign configuration onto the runner. The
// harness fails fast: like the sequential loops it replaced, a cell error
// aborts the rest of the campaign.
func (c Config) runnerOptions() runner.Options {
	return runner.Options{Parallelism: c.Parallelism, FailFast: true}
}

// Measurement is the median outcome of repeated runs of one benchmark
// under one agent configuration.
type Measurement struct {
	Benchmark string
	Agent     AgentKind
	// MedianCycles is the median execution time in cycles.
	MedianCycles float64
	// MedianThroughput is the median ops/Mcycles (JBB-style benchmarks).
	MedianThroughput float64
	// Report is the profiling report of the last run (nil for
	// AgentNone).
	Report *core.Report
	// Truth is the ground truth of the last run.
	Truth core.GroundTruth
	// Runs is the number of repetitions aggregated.
	Runs int
}

// Measure runs one benchmark under one agent configuration cfg.Runs times
// and aggregates with the median. It is one cell of the campaign matrix.
func Measure(b workloads.Benchmark, kind AgentKind, cfg Config) (*Measurement, error) {
	return MeasureContext(context.Background(), b, kind, cfg)
}

// MeasureContext is Measure with cooperative cancellation between VM
// runs. Benchmarks with a warehouse sequence (SPEC JBB2005 style) run the
// whole sequence per repetition and aggregate cycles, operations, reports
// and ground truth across it.
func MeasureContext(ctx context.Context, b workloads.Benchmark, kind AgentKind, cfg Config) (*Measurement, error) {
	cfg = cfg.normalized()
	spec := b.Spec.Scale(cfg.Scale)
	sequence := b.WarehouseSequence
	if len(sequence) == 0 {
		sequence = []int{spec.Threads}
	}
	var cyclesSamples, throughputSamples []float64
	m := &Measurement{Benchmark: spec.Name, Agent: kind, Runs: cfg.Runs}
	for i := 0; i < cfg.Runs; i++ {
		var totalCycles, totalOps uint64
		var report *core.Report
		var truth core.GroundTruth
		for _, warehouses := range sequence {
			s := spec
			s.Threads = warehouses
			prog, err := workloads.Build(s)
			if err != nil {
				return nil, fmt.Errorf("harness: %s: %w", s.Name, err)
			}
			res, err := core.RunContext(ctx, prog, newAgent(kind), cfg.Opts)
			if err != nil {
				return nil, fmt.Errorf("harness: %s under %s: %w", s.Name, kind, err)
			}
			totalCycles += res.TotalCycles
			totalOps += res.Ops
			truth.Add(res.Truth)
			report = stats.MergeReports(report, res.Report)
		}
		cyclesSamples = append(cyclesSamples, float64(totalCycles))
		if totalCycles > 0 {
			throughputSamples = append(throughputSamples,
				float64(totalOps)/(float64(totalCycles)/1e6))
		} else {
			throughputSamples = append(throughputSamples, 0)
		}
		m.Report = report
		m.Truth = truth
	}
	var err error
	if m.MedianCycles, err = stats.Median(cyclesSamples); err != nil {
		return nil, err
	}
	if m.MedianThroughput, err = stats.Median(throughputSamples); err != nil {
		return nil, err
	}
	return m, nil
}

// measureGrid runs one cell per suite benchmark × kind on the worker
// pool and returns the measurements as grid[benchmark][kind-position],
// in suite order.
func measureGrid(ctx context.Context, cfg Config, kinds []AgentKind) ([][]*Measurement, error) {
	suite := workloads.Suite()
	var cells []runner.Cell[*Measurement]
	for _, b := range suite {
		for _, kind := range kinds {
			cells = append(cells, runner.Cell[*Measurement]{
				Key: b.Spec.Name + "/" + kind.String(),
				Do: func(ctx context.Context) (*Measurement, error) {
					return MeasureContext(ctx, b, kind, cfg)
				},
			})
		}
	}
	results, err := runner.Run(ctx, cfg.runnerOptions(), cells)
	if err != nil {
		return nil, err
	}
	ms := runner.Values(results)
	grid := make([][]*Measurement, len(suite))
	for i := range suite {
		grid[i] = ms[i*len(kinds) : (i+1)*len(kinds)]
	}
	return grid, nil
}

// TableIRow is one benchmark's row of Table I.
type TableIRow struct {
	Benchmark string
	// Throughput is true for JBB-style rows, where the metric is
	// operations per Mcycles and the overhead formula inverts.
	Throughput bool

	TimeOriginal float64
	TimeSPA      float64
	TimeIPA      float64

	ThroughputOriginal float64
	ThroughputSPA      float64
	ThroughputIPA      float64

	OverheadSPA float64 // percent
	OverheadIPA float64 // percent

	// Paper columns for side-by-side comparison.
	PaperOverheadSPA float64
	PaperOverheadIPA float64
}

// TableI runs the full Table I campaign: every suite benchmark under the
// three configurations. The returned rows preserve suite order (JVM98
// rows first, then JBB2005) for every parallelism level.
func TableI(cfg Config) ([]TableIRow, error) {
	return TableIContext(context.Background(), cfg)
}

// TableIContext is TableI with cooperative cancellation of the cell pool.
func TableIContext(ctx context.Context, cfg Config) ([]TableIRow, error) {
	cfg = cfg.normalized()
	kinds := []AgentKind{AgentNone, AgentSPA, AgentIPA}
	grid, err := measureGrid(ctx, cfg, kinds)
	if err != nil {
		return nil, err
	}
	var rows []TableIRow
	for i, b := range workloads.Suite() {
		row := TableIRow{
			Benchmark:        b.Spec.Name,
			Throughput:       b.Expected.PaperThroughput > 0,
			PaperOverheadSPA: b.Expected.PaperSPAOverheadPct,
			PaperOverheadIPA: b.Expected.PaperIPAOverheadPct,
		}
		ms := grid[i]
		row.TimeOriginal = ms[AgentNone].MedianCycles
		row.TimeSPA = ms[AgentSPA].MedianCycles
		row.TimeIPA = ms[AgentIPA].MedianCycles
		row.ThroughputOriginal = ms[AgentNone].MedianThroughput
		row.ThroughputSPA = ms[AgentSPA].MedianThroughput
		row.ThroughputIPA = ms[AgentIPA].MedianThroughput
		if row.Throughput {
			if row.OverheadSPA, err = stats.OverheadThroughput(row.ThroughputOriginal, row.ThroughputSPA); err != nil {
				return nil, err
			}
			if row.OverheadIPA, err = stats.OverheadThroughput(row.ThroughputOriginal, row.ThroughputIPA); err != nil {
				return nil, err
			}
		} else {
			if row.OverheadSPA, err = stats.OverheadTime(row.TimeOriginal, row.TimeSPA); err != nil {
				return nil, err
			}
			if row.OverheadIPA, err = stats.OverheadTime(row.TimeOriginal, row.TimeIPA); err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GeoMeanRow aggregates the JVM98 rows (time-metric rows) of Table I with
// the geometric mean, as the paper does. The column math lives in
// internal/stats.
func GeoMeanRow(rows []TableIRow) (TableIRow, error) {
	var matrix [][]float64
	for _, r := range rows {
		if r.Throughput {
			continue
		}
		matrix = append(matrix, []float64{r.TimeOriginal, r.TimeSPA, r.TimeIPA})
	}
	g := TableIRow{Benchmark: "geom. mean"}
	cols, err := stats.GeoMeanColumns(matrix)
	if err != nil {
		return g, err
	}
	g.TimeOriginal, g.TimeSPA, g.TimeIPA = cols[0], cols[1], cols[2]
	if g.OverheadSPA, err = stats.OverheadTime(g.TimeOriginal, g.TimeSPA); err != nil {
		return g, err
	}
	if g.OverheadIPA, err = stats.OverheadTime(g.TimeOriginal, g.TimeIPA); err != nil {
		return g, err
	}
	return g, nil
}

// TableIIRow is one benchmark's row of Table II.
type TableIIRow struct {
	Benchmark         string
	NativePct         float64
	JNICalls          uint64
	NativeMethodCalls uint64
	// Ground-truth and paper columns for comparison.
	TruthNativePct float64
	PaperNativePct float64
}

// TableII runs the Table II campaign: every benchmark under IPA, reporting
// the percentage of native execution and the transition counts. The
// ground-truth column comes from a separate uninstrumented run of the same
// workload: the oracle for agent accuracy must not itself be perturbed by
// the agent's machinery.
func TableII(cfg Config) ([]TableIIRow, error) {
	return TableIIContext(context.Background(), cfg)
}

// TableIIContext is TableII with cooperative cancellation of the cell pool.
func TableIIContext(ctx context.Context, cfg Config) ([]TableIIRow, error) {
	cfg = cfg.normalized()
	grid, err := measureGrid(ctx, cfg, []AgentKind{AgentIPA, AgentNone})
	if err != nil {
		return nil, err
	}
	var rows []TableIIRow
	for i, b := range workloads.Suite() {
		m, plain := grid[i][0], grid[i][1]
		rows = append(rows, TableIIRow{
			Benchmark:         b.Spec.Name,
			NativePct:         m.Report.NativeFraction() * 100,
			JNICalls:          m.Report.JNICalls,
			NativeMethodCalls: m.Report.NativeMethodCalls,
			TruthNativePct:    plain.Truth.NativeFraction() * 100,
			PaperNativePct:    b.Expected.PaperNativePct,
		})
	}
	return rows, nil
}

// RenderTableI formats Table I like the paper, with cycle counts standing
// in for seconds and a throughput row for JBB2005.
func RenderTableI(rows []TableIRow, geo TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: EXECUTION TIME AND PROFILING OVERHEAD FOR SPA AND IPA\n")
	fmt.Fprintf(&b, "%-11s %14s %14s %14s %14s %13s\n",
		"benchmark", "cycles orig", "cycles SPA", "cycles IPA", "overhead SPA", "overhead IPA")
	for _, r := range rows {
		if r.Throughput {
			continue
		}
		fmt.Fprintf(&b, "%-11s %14.0f %14.0f %14.0f %13.2f%% %12.2f%%\n",
			r.Benchmark, r.TimeOriginal, r.TimeSPA, r.TimeIPA, r.OverheadSPA, r.OverheadIPA)
	}
	fmt.Fprintf(&b, "%-11s %14.0f %14.0f %14.0f %13.2f%% %12.2f%%\n",
		geo.Benchmark, geo.TimeOriginal, geo.TimeSPA, geo.TimeIPA, geo.OverheadSPA, geo.OverheadIPA)
	fmt.Fprintf(&b, "\n%-11s %14s %14s %14s %14s %13s\n",
		"benchmark", "thpt orig", "thpt SPA", "thpt IPA", "overhead SPA", "overhead IPA")
	for _, r := range rows {
		if !r.Throughput {
			continue
		}
		fmt.Fprintf(&b, "%-11s %14.1f %14.1f %14.1f %13.2f%% %12.2f%%\n",
			r.Benchmark, r.ThroughputOriginal, r.ThroughputSPA, r.ThroughputIPA,
			r.OverheadSPA, r.OverheadIPA)
	}
	return b.String()
}

// RenderTableII formats Table II like the paper, adding the ground-truth
// and paper columns the simulator makes available.
func RenderTableII(rows []TableIIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: PROFILING STATISTICS\n")
	fmt.Fprintf(&b, "%-11s %18s %12s %20s %12s %11s\n",
		"benchmark", "% native execution", "JNI calls", "native method calls", "truth %", "paper %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %17.2f%% %12d %20d %11.2f%% %10.2f%%\n",
			r.Benchmark, r.NativePct, r.JNICalls, r.NativeMethodCalls,
			r.TruthNativePct, r.PaperNativePct)
	}
	return b.String()
}
