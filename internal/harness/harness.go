// Package harness drives the Section V evaluation: it runs every suite
// benchmark uninstrumented, under SPA, and under IPA; aggregates repeated
// runs with the paper's median-of-N rule; computes the overhead formulas;
// and renders Table I (execution time and profiling overhead) and Table II
// (profiling statistics) in the paper's layout.
//
// The campaign is a matrix of measurement cells — benchmark × agent
// configuration — and every cell is an independent VM invocation, so the
// harness executes them on the internal/runner worker pool. Cell results
// are deterministic and returned in submission order, which makes a
// parallel campaign byte-identical to a sequential one (Config.Parallelism
// = 1); only wall-clock time changes.
package harness

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/agents/registry"
	"repro/internal/core"
	"repro/internal/jit"
	"repro/internal/resultcache"
	"repro/internal/runner"
	"repro/internal/scenarios"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// AgentKind selects the profiling configuration of a run.
type AgentKind int

// The three Table I configurations.
const (
	// AgentNone runs without any profiling agent.
	AgentNone AgentKind = iota
	// AgentSPA runs under the Simple Profiling Agent.
	AgentSPA
	// AgentIPA runs under the Improved Profiling Agent.
	AgentIPA
)

// String names the configuration.
func (k AgentKind) String() string {
	switch k {
	case AgentSPA:
		return "SPA"
	case AgentIPA:
		return "IPA"
	default:
		return "original"
	}
}

// registryName maps the kind to its internal/agents/registry name.
func (k AgentKind) registryName() string {
	switch k {
	case AgentSPA:
		return "spa"
	case AgentIPA:
		return "ipa"
	default:
		return "none"
	}
}

// newAgent builds a fresh agent for one run; agents are single-use.
func newAgent(k AgentKind) core.Agent {
	agent, err := registry.New(k.registryName(), registry.Config{})
	if err != nil {
		// The three kinds are always registered; reaching this is a
		// programming error, not a runtime condition.
		panic(err)
	}
	return agent
}

// Config parameterizes an evaluation campaign.
type Config struct {
	// Runs is the number of repetitions whose median is reported. The
	// paper uses 15; the simulator is deterministic, so the median
	// machinery matters only when options vary, but it is preserved for
	// methodological fidelity.
	Runs int
	// Scale divides every benchmark's outer iteration count (1 = the
	// full calibrated size).
	Scale int
	// Parallelism is the number of measurement cells run concurrently,
	// each on its own isolated VM. 1 reproduces the sequential pipeline;
	// values below 1 mean runner.DefaultParallelism(). Output is
	// identical for every value — cells are deterministic and results
	// are assembled in submission order.
	Parallelism int
	// Warmup is the number of discarded repetitions each cell runs
	// before the measured Runs. The simulator is deterministic, so
	// warmup cannot change any simulated value; what it does is exercise
	// the execution tier end to end (class load → hotness → promotion →
	// compiled frames) before measurement and warm the host's own caches
	// and branch predictors, which stabilizes the wall-clock numbers the
	// campaign benchmarks report. Tier-sensitive scenarios run with
	// Warmup >= 1 so their measured repetition is never the one paying
	// host compilation costs.
	Warmup int
	// Opts is the VM cost model and engine selection. Opts.Tier chooses
	// the execution engine for every cell (-engine on the CLIs); all
	// measured simulated values are byte-identical across engines.
	Opts vm.Options
	// FailFast aborts the campaign at the first cell failure instead of
	// degrading gracefully. The paper table presets set it — every cell
	// feeds an overhead formula, so a partial grid is useless — while
	// campaigns default to graceful: a failed cell becomes an error row,
	// the rest of the matrix still runs, and the result reports Failed.
	FailFast bool
	// CellTimeout bounds each attempt of each measurement cell; zero
	// means no deadline. See runner.Options.CellTimeout.
	CellTimeout time.Duration
	// MaxRetries grants extra attempts to cells failing with a transient
	// error. See runner.Options.MaxRetries.
	MaxRetries int
	// RetrySeed seeds the deterministic retry backoff jitter.
	RetrySeed int64
	// Hook is the runner's fault-injection seam, forwarded verbatim
	// (internal/faultinject implements it). Nil injects nothing.
	Hook runner.Hook
	// Cache is the persistent content-addressed result cache; nil (or a
	// nil-opening ModeOff) disables it. A campaign cell whose content
	// key hits the cache skips simulation entirely and decodes the
	// stored canonical payload — byte-identical output either way. See
	// internal/resultcache and docs/caching.md.
	Cache *resultcache.Cache
	// CacheVerify, when positive, re-executes a deterministic 1-in-N
	// sample of cache hits (keyed by content hash, so the sample is
	// stable across runs and parallelism) and fails the cell loudly if
	// the fresh canonical payload differs from the cached bytes.
	CacheVerify int
	// CellStats stamps each cell's Measurement.Host with the host-side
	// cost of producing it (-cellstats on the CLIs). Off by default so
	// the run-varying telemetry never leaks into row comparisons or
	// byte-identity goldens.
	CellStats bool
	// Telemetry, when non-nil, records campaign/cell/repetition spans
	// and per-family metrics (wall time, cache sources, tier and GC
	// counters read from each Measurement's jit.Stats/vm.GCStats seams).
	// Like Host, everything it collects is host-side bookkeeping stamped
	// outside the canonical payloads: output is byte-identical with
	// telemetry on or off. Nil (the default) costs one comparison per
	// cell.
	Telemetry *telemetry.Recorder
}

// DefaultConfig returns the configuration used to regenerate the tables.
func DefaultConfig() Config {
	return Config{Runs: 3, Scale: 1, Parallelism: runner.DefaultParallelism(), Opts: vm.DefaultOptions()}
}

func (c Config) normalized() Config {
	if c.Runs < 1 {
		c.Runs = 1
	}
	if c.Scale < 1 {
		c.Scale = 1
	}
	if c.Parallelism < 1 {
		c.Parallelism = runner.DefaultParallelism()
	}
	if c.Warmup < 0 {
		c.Warmup = 0
	}
	return c
}

// runnerOptions maps the campaign configuration onto the runner. In
// graceful mode (FailFast unset) failed cells are emitted in order like
// successful ones, so a campaign can render error rows in place.
func (c Config) runnerOptions() runner.Options {
	return runner.Options{
		Parallelism: c.Parallelism,
		FailFast:    c.FailFast,
		EmitFailed:  !c.FailFast,
		CellTimeout: c.CellTimeout,
		MaxRetries:  c.MaxRetries,
		RetrySeed:   c.RetrySeed,
		Hook:        c.Hook,
		Telemetry:   c.Telemetry,
	}
}

// Measurement is the median outcome of repeated runs of one scenario
// under one agent configuration.
type Measurement struct {
	Benchmark string
	// Agent is the Table I configuration for the three preset kinds;
	// AgentName is the registry name and covers every agent a campaign
	// can run.
	Agent     AgentKind
	AgentName string
	// MedianCycles is the median execution time in cycles.
	MedianCycles float64
	// MedianThroughput is the median ops/Mcycles (JBB-style benchmarks).
	MedianThroughput float64
	// Report is the profiling report of the last run (nil for
	// AgentNone).
	Report *core.Report
	// Truth is the ground truth of the last run.
	Truth core.GroundTruth
	// Threads is the largest thread count a run of the measurement
	// created.
	Threads int
	// Runs is the number of repetitions aggregated.
	Runs int
	// GC is the generational heap ledger of the last measured repetition
	// (summed across a warehouse sequence): allocation, collection and
	// pause counts. All zero except the allocation counters when the
	// heap runs unbounded (legacy mode).
	GC vm.GCStats
	// Tier aggregates the execution tier's host-side bookkeeping over
	// the last measured repetition (summed across a warehouse sequence).
	// It never feeds a simulated metric — it exists so campaigns and
	// tests can assert that promotion, deopt and invalidation actually
	// happened under -engine=jit/auto.
	Tier jit.Stats
	// Host is the host-side cost of producing this measurement (wall
	// time, Go-heap allocation, and whether it came from execution, the
	// cache, the journal or an in-process dedup). Excluded from the
	// canonical JSON payload — and therefore from every byte-identity
	// golden — because it varies run to run; campaigns stamp it fresh on
	// every cell, including cached hits (which report their own
	// near-zero cost). Rendered only behind -cellstats.
	Host core.HostStats `json:"-"`
}

// Measure runs one benchmark under one agent configuration cfg.Runs times
// and aggregates with the median. It is one cell of the campaign matrix.
func Measure(b workloads.Benchmark, kind AgentKind, cfg Config) (*Measurement, error) {
	return MeasureContext(context.Background(), b, kind, cfg)
}

// MeasureContext is Measure with cooperative cancellation between VM
// runs; it adapts the legacy suite Benchmark to the scenario form.
func MeasureContext(ctx context.Context, b workloads.Benchmark, kind AgentKind, cfg Config) (*Measurement, error) {
	sc := scenarios.Scenario{
		Family:            "adhoc",
		Workload:          b.Spec.Workload(),
		WarehouseSequence: b.WarehouseSequence,
		Expected:          b.Expected,
	}
	m, err := MeasureScenario(ctx, sc, kind.registryName(), cfg)
	if err != nil {
		return nil, err
	}
	m.Agent = kind
	return m, nil
}

// MeasureScenario runs one scenario under one registry agent cfg.Runs
// times and aggregates with the median — the campaign matrix cell.
// Scenarios with a warehouse sequence (SPEC JBB2005 style) run the whole
// sequence per repetition and aggregate cycles, operations, reports and
// ground truth across it. Agents that need engine support (the sampler's
// sampling interrupt) get their VM-option tuning applied per cell.
func MeasureScenario(ctx context.Context, sc scenarios.Scenario, agentName string, cfg Config) (*Measurement, error) {
	cfg = cfg.normalized()
	w := sc.Workload.Scale(cfg.Scale)
	sequence := sc.WarehouseSequence
	if len(sequence) == 0 {
		sequence = []int{w.Threads}
	}
	opts := cfg.Opts
	registry.TuneOptions(agentName, &opts)
	// A scenario's heap spec applies only when the campaign options left
	// the heap in legacy mode, so a global -heap-nursery flag wins.
	sc.ApplyHeap(&opts)
	var cyclesSamples, throughputSamples []float64
	m := &Measurement{Benchmark: w.Name, AgentName: agentName, Runs: cfg.Runs}
	// Warmup repetitions run the identical cell and discard every sample:
	// determinism makes them simulation-invisible, but they drive the
	// execution tier through its whole promotion pipeline and warm the
	// host before the measured repetitions start.
	for i := 0; i < cfg.Warmup+cfg.Runs; i++ {
		warmup := i < cfg.Warmup
		// The repetition span is pure host-side observability: rctx only
		// adds the trace lane, never a deadline, so execution under
		// telemetry is identical to execution without it.
		rctx, rspan := cfg.Telemetry.StartSpan(ctx, telemetry.CatMeasure, "repetition")
		if rspan != nil {
			rspan.Arg("scenario", sc.Name()).Arg("rep", i).Arg("warmup", warmup)
		}
		var totalCycles, totalOps uint64
		var report *core.Report
		var truth core.GroundTruth
		var tier jit.Stats
		var gc vm.GCStats
		threads := 0
		for _, warehouses := range sequence {
			wv := w
			wv.Threads = warehouses
			prog, err := workloads.BuildWorkload(wv)
			if err != nil {
				rspan.End()
				return nil, fmt.Errorf("harness: %s: %w", wv.Name, err)
			}
			agent, err := registry.New(agentName, registry.Config{})
			if err != nil {
				rspan.End()
				return nil, fmt.Errorf("harness: %s: %w", wv.Name, err)
			}
			res, err := core.RunContext(rctx, prog, agent, opts)
			if err != nil {
				rspan.End()
				return nil, fmt.Errorf("harness: %s under %s: %w", wv.Name, agentName, err)
			}
			totalCycles += res.TotalCycles
			totalOps += res.Ops
			truth.Add(res.Truth)
			gc.Add(res.GC)
			report = stats.MergeReports(report, res.Report)
			if res.Threads > threads {
				threads = res.Threads
			}
			tier.Engine = res.Tier.Engine
			tier.MethodsCompiled += res.Tier.MethodsCompiled
			tier.CompileFailures += res.Tier.CompileFailures
			tier.UnitsInvalidated += res.Tier.UnitsInvalidated
			tier.CompiledFrames += res.Tier.CompiledFrames
			tier.DeoptFrames += res.Tier.DeoptFrames
			tier.FallbackChunks += res.Tier.FallbackChunks
			tier.InlinedSites += res.Tier.InlinedSites
			tier.InlinedCalls += res.Tier.InlinedCalls
			tier.OSREntries += res.Tier.OSREntries
			tier.SuperinstrPairs += res.Tier.SuperinstrPairs
			tier.PerMethod = jit.MergeMethodStats(tier.PerMethod, res.Tier.PerMethod)
		}
		rspan.End()
		if warmup {
			continue
		}
		cyclesSamples = append(cyclesSamples, float64(totalCycles))
		if totalCycles > 0 {
			throughputSamples = append(throughputSamples,
				float64(totalOps)/(float64(totalCycles)/1e6))
		} else {
			throughputSamples = append(throughputSamples, 0)
		}
		m.Report = report
		m.Truth = truth
		m.Threads = threads
		m.Tier = tier
		m.GC = gc
	}
	var err error
	if m.MedianCycles, err = stats.Median(cyclesSamples); err != nil {
		return nil, err
	}
	if m.MedianThroughput, err = stats.Median(throughputSamples); err != nil {
		return nil, err
	}
	return m, nil
}

// paperCampaign builds the Campaign behind the paper tables: the paper
// profile × the requested Table I agent kinds.
func paperCampaign(cfg Config, kinds []AgentKind) (Campaign, error) {
	suite, err := scenarios.Profile("paper")
	if err != nil {
		return Campaign{}, err
	}
	agents := make([]string, len(kinds))
	for i, k := range kinds {
		agents[i] = k.registryName()
	}
	// Every cell of the paper grid feeds an overhead formula; a partial
	// grid cannot render, so the presets fail fast.
	cfg.FailFast = true
	return Campaign{Scenarios: suite, Agents: agents, Config: cfg}, nil
}

// measureGrid runs one campaign cell per paper benchmark × kind and
// returns the measurements as grid[benchmark][kind-position] together
// with the scenario list actually measured — callers must zip rows
// against that list, not against a fresh Profile lookup, since the
// registry can grow between calls.
func measureGrid(ctx context.Context, cfg Config, kinds []AgentKind) ([]scenarios.Scenario, [][]*Measurement, error) {
	camp, err := paperCampaign(cfg, kinds)
	if err != nil {
		return nil, nil, err
	}
	res, err := camp.Run(ctx, nil)
	if err != nil {
		return nil, nil, err
	}
	grid := make([][]*Measurement, len(camp.Scenarios))
	for i := range camp.Scenarios {
		grid[i] = make([]*Measurement, len(kinds))
		for j, kind := range kinds {
			m := res.Rows[i*len(kinds)+j].M
			m.Agent = kind
			grid[i][j] = m
		}
	}
	return camp.Scenarios, grid, nil
}

// TableIRow is one benchmark's row of Table I.
type TableIRow struct {
	Benchmark string
	// Throughput is true for JBB-style rows, where the metric is
	// operations per Mcycles and the overhead formula inverts.
	Throughput bool

	TimeOriginal float64
	TimeSPA      float64
	TimeIPA      float64

	ThroughputOriginal float64
	ThroughputSPA      float64
	ThroughputIPA      float64

	OverheadSPA float64 // percent
	OverheadIPA float64 // percent

	// Paper columns for side-by-side comparison.
	PaperOverheadSPA float64
	PaperOverheadIPA float64
}

// TableI runs the full Table I campaign: every suite benchmark under the
// three configurations. The returned rows preserve suite order (JVM98
// rows first, then JBB2005) for every parallelism level.
func TableI(cfg Config) ([]TableIRow, error) {
	return TableIContext(context.Background(), cfg)
}

// TableIContext is TableI with cooperative cancellation of the cell pool.
func TableIContext(ctx context.Context, cfg Config) ([]TableIRow, error) {
	cfg = cfg.normalized()
	kinds := []AgentKind{AgentNone, AgentSPA, AgentIPA}
	suite, grid, err := measureGrid(ctx, cfg, kinds)
	if err != nil {
		return nil, err
	}
	var rows []TableIRow
	for i, sc := range suite {
		row := TableIRow{
			Benchmark:        sc.Name(),
			Throughput:       sc.Expected.PaperThroughput > 0,
			PaperOverheadSPA: sc.Expected.PaperSPAOverheadPct,
			PaperOverheadIPA: sc.Expected.PaperIPAOverheadPct,
		}
		ms := grid[i]
		row.TimeOriginal = ms[AgentNone].MedianCycles
		row.TimeSPA = ms[AgentSPA].MedianCycles
		row.TimeIPA = ms[AgentIPA].MedianCycles
		row.ThroughputOriginal = ms[AgentNone].MedianThroughput
		row.ThroughputSPA = ms[AgentSPA].MedianThroughput
		row.ThroughputIPA = ms[AgentIPA].MedianThroughput
		if row.Throughput {
			if row.OverheadSPA, err = stats.OverheadThroughput(row.ThroughputOriginal, row.ThroughputSPA); err != nil {
				return nil, err
			}
			if row.OverheadIPA, err = stats.OverheadThroughput(row.ThroughputOriginal, row.ThroughputIPA); err != nil {
				return nil, err
			}
		} else {
			if row.OverheadSPA, err = stats.OverheadTime(row.TimeOriginal, row.TimeSPA); err != nil {
				return nil, err
			}
			if row.OverheadIPA, err = stats.OverheadTime(row.TimeOriginal, row.TimeIPA); err != nil {
				return nil, err
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// GeoMeanRow aggregates the JVM98 rows (time-metric rows) of Table I with
// the geometric mean, as the paper does. The column math lives in
// internal/stats. Row sets without a time-metric row, or with zero or
// negative cycle measurements, are descriptive errors — the geometric
// mean is undefined for them and would otherwise surface as NaN in the
// rendered table.
func GeoMeanRow(rows []TableIRow) (TableIRow, error) {
	g := TableIRow{Benchmark: "geom. mean"}
	var matrix [][]float64
	for _, r := range rows {
		if r.Throughput {
			continue
		}
		if r.TimeOriginal <= 0 || r.TimeSPA <= 0 || r.TimeIPA <= 0 {
			return g, fmt.Errorf("harness: geometric mean over %q: non-positive cycle measurement (orig=%g spa=%g ipa=%g)",
				r.Benchmark, r.TimeOriginal, r.TimeSPA, r.TimeIPA)
		}
		matrix = append(matrix, []float64{r.TimeOriginal, r.TimeSPA, r.TimeIPA})
	}
	if len(matrix) == 0 {
		return g, fmt.Errorf("harness: geometric mean needs at least one time-metric row (got %d rows, none with the time metric)", len(rows))
	}
	cols, err := stats.GeoMeanColumns(matrix)
	if err != nil {
		return g, fmt.Errorf("harness: geometric mean over %d rows: %w", len(matrix), err)
	}
	g.TimeOriginal, g.TimeSPA, g.TimeIPA = cols[0], cols[1], cols[2]
	if g.OverheadSPA, err = stats.OverheadTime(g.TimeOriginal, g.TimeSPA); err != nil {
		return g, err
	}
	if g.OverheadIPA, err = stats.OverheadTime(g.TimeOriginal, g.TimeIPA); err != nil {
		return g, err
	}
	return g, nil
}

// TableIIRow is one benchmark's row of Table II.
type TableIIRow struct {
	Benchmark         string
	NativePct         float64
	JNICalls          uint64
	NativeMethodCalls uint64
	// Ground-truth and paper columns for comparison.
	TruthNativePct float64
	PaperNativePct float64
}

// TableII runs the Table II campaign: every benchmark under IPA, reporting
// the percentage of native execution and the transition counts. The
// ground-truth column comes from a separate uninstrumented run of the same
// workload: the oracle for agent accuracy must not itself be perturbed by
// the agent's machinery.
func TableII(cfg Config) ([]TableIIRow, error) {
	return TableIIContext(context.Background(), cfg)
}

// TableIIContext is TableII with cooperative cancellation of the cell pool.
func TableIIContext(ctx context.Context, cfg Config) ([]TableIIRow, error) {
	cfg = cfg.normalized()
	suite, grid, err := measureGrid(ctx, cfg, []AgentKind{AgentIPA, AgentNone})
	if err != nil {
		return nil, err
	}
	var rows []TableIIRow
	for i, sc := range suite {
		m, plain := grid[i][0], grid[i][1]
		rows = append(rows, TableIIRow{
			Benchmark:         sc.Name(),
			NativePct:         m.Report.NativeFraction() * 100,
			JNICalls:          m.Report.JNICalls,
			NativeMethodCalls: m.Report.NativeMethodCalls,
			TruthNativePct:    plain.Truth.NativeFraction() * 100,
			PaperNativePct:    sc.Expected.PaperNativePct,
		})
	}
	return rows, nil
}

// validRow rejects the numeric failure modes a table row can carry into
// a render: NaN and infinities from degenerate overhead divisions.
func validRow(benchmark string, vals ...float64) error {
	for _, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("harness: row %q holds a non-finite value %g; refusing to render", benchmark, v)
		}
	}
	return nil
}

// RenderTableI formats Table I like the paper, with cycle counts standing
// in for seconds and a throughput row for JBB2005. Empty row sets and
// rows with non-finite values are descriptive errors instead of blank or
// NaN-bearing tables.
func RenderTableI(rows []TableIRow, geo TableIRow) (string, error) {
	if len(rows) == 0 {
		return "", fmt.Errorf("harness: Table I has no rows to render")
	}
	for _, r := range rows {
		if err := validRow(r.Benchmark, r.TimeOriginal, r.TimeSPA, r.TimeIPA,
			r.ThroughputOriginal, r.ThroughputSPA, r.ThroughputIPA,
			r.OverheadSPA, r.OverheadIPA); err != nil {
			return "", err
		}
	}
	if err := validRow(geo.Benchmark, geo.TimeOriginal, geo.TimeSPA, geo.TimeIPA,
		geo.OverheadSPA, geo.OverheadIPA); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: EXECUTION TIME AND PROFILING OVERHEAD FOR SPA AND IPA\n")
	fmt.Fprintf(&b, "%-11s %14s %14s %14s %14s %13s\n",
		"benchmark", "cycles orig", "cycles SPA", "cycles IPA", "overhead SPA", "overhead IPA")
	for _, r := range rows {
		if r.Throughput {
			continue
		}
		fmt.Fprintf(&b, "%-11s %14.0f %14.0f %14.0f %13.2f%% %12.2f%%\n",
			r.Benchmark, r.TimeOriginal, r.TimeSPA, r.TimeIPA, r.OverheadSPA, r.OverheadIPA)
	}
	fmt.Fprintf(&b, "%-11s %14.0f %14.0f %14.0f %13.2f%% %12.2f%%\n",
		geo.Benchmark, geo.TimeOriginal, geo.TimeSPA, geo.TimeIPA, geo.OverheadSPA, geo.OverheadIPA)
	fmt.Fprintf(&b, "\n%-11s %14s %14s %14s %14s %13s\n",
		"benchmark", "thpt orig", "thpt SPA", "thpt IPA", "overhead SPA", "overhead IPA")
	for _, r := range rows {
		if !r.Throughput {
			continue
		}
		fmt.Fprintf(&b, "%-11s %14.1f %14.1f %14.1f %13.2f%% %12.2f%%\n",
			r.Benchmark, r.ThroughputOriginal, r.ThroughputSPA, r.ThroughputIPA,
			r.OverheadSPA, r.OverheadIPA)
	}
	return b.String(), nil
}

// RenderTableII formats Table II like the paper, adding the ground-truth
// and paper columns the simulator makes available. Empty row sets and
// rows with non-finite values are descriptive errors.
func RenderTableII(rows []TableIIRow) (string, error) {
	if len(rows) == 0 {
		return "", fmt.Errorf("harness: Table II has no rows to render")
	}
	for _, r := range rows {
		if err := validRow(r.Benchmark, r.NativePct, r.TruthNativePct, r.PaperNativePct); err != nil {
			return "", err
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: PROFILING STATISTICS\n")
	fmt.Fprintf(&b, "%-11s %18s %12s %20s %12s %11s\n",
		"benchmark", "% native execution", "JNI calls", "native method calls", "truth %", "paper %")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-11s %17.2f%% %12d %20d %11.2f%% %10.2f%%\n",
			r.Benchmark, r.NativePct, r.JNICalls, r.NativeMethodCalls,
			r.TruthNativePct, r.PaperNativePct)
	}
	return b.String(), nil
}
