package harness

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestSweepTransitionFrequencyMonotone(t *testing.T) {
	cfg := testConfig()
	points, err := SweepTransitionFrequency([]int{0, 2, 8, 32}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	// Zero native calls: negligible overhead (only the launcher JNI
	// bracket remains).
	if points[0].IPAOverheadPct > 2 {
		t.Fatalf("overhead at zero transitions = %.2f%%", points[0].IPAOverheadPct)
	}
	// Overhead grows with transition frequency — Section V-A's mechanism.
	for i := 1; i < len(points); i++ {
		if points[i].IPAOverheadPct <= points[i-1].IPAOverheadPct {
			t.Fatalf("overhead not increasing: %+v", points)
		}
		if points[i].TransitionsPerMcycle <= points[i-1].TransitionsPerMcycle {
			t.Fatalf("transition frequency not increasing: %+v", points)
		}
	}
	// Accuracy holds across the sweep.
	for _, p := range points {
		diff := p.MeasuredNativePct - p.TruthNativePct
		if diff < -3 || diff > 3 {
			t.Errorf("n=%d: measured %.2f%% vs truth %.2f%%",
				p.NativeCallsPerIter, p.MeasuredNativePct, p.TruthNativePct)
		}
	}
}

func TestRenderSweep(t *testing.T) {
	cfg := testConfig()
	cfg.Scale = 50
	points, err := SweepTransitionFrequency([]int{1, 16}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := RenderSweep(points)
	for _, want := range []string{"IPA overhead", "trans/Mcycle", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

// TestJBBWarehouseSequenceAggregation confirms the Measure-level protocol:
// the jbb2005 measurement aggregates the 1+2+3+4 warehouse runs.
func TestJBBWarehouseSequenceAggregation(t *testing.T) {
	b, err := workloads.ByName("jbb2005")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	m, err := Measure(b, AgentIPA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1+2+3+4 = 10 worker threads plus 3 spawn natives... per-thread
	// report entries: each run contributes Threads entries.
	if len(m.Report.PerThread) != 10 {
		t.Fatalf("per-thread entries = %d, want 10 (warehouse sequence)", len(m.Report.PerThread))
	}
	single := b
	single.WarehouseSequence = nil
	ms, err := Measure(single, AgentIPA, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The sequence executes 2.5x the work of the fixed 4-warehouse run.
	ratio := m.MedianCycles / ms.MedianCycles
	if ratio < 2.0 || ratio > 3.0 {
		t.Fatalf("sequence/single cycle ratio = %.2f, want about 2.5", ratio)
	}
}
