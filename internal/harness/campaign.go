package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/resultcache"
	"repro/internal/runner"
	"repro/internal/scenarios"
	"repro/internal/telemetry"
	"repro/internal/vm"
)

// Campaign is the generalized measurement matrix: any scenario set × any
// agent set, executed cell by cell on the parallel runner. The paper
// tables are thin presets over it (TableI is the paper profile × the
// none/spa/ipa agent set); every other profile and every scenario file
// runs through the same machinery.
type Campaign struct {
	// Scenarios are the rows of the matrix, in order.
	Scenarios []scenarios.Scenario
	// Agents are the columns: profiling-agent registry names ("none",
	// "spa", "ipa", "sampler", ...). Empty means none/spa/ipa.
	Agents []string
	// Config is the shared measurement configuration.
	Config Config
	// Journal, when non-nil, makes the campaign crash-resumable: each
	// cell's Measurement is journaled under its content-addressed key as
	// soon as the cell completes, and cells already present in the
	// journal are served from it instead of re-running. Because the
	// journaled payload is the exact Measurement (JSON round-trips it
	// bit-for-bit), a resumed campaign's output is byte-identical to an
	// uninterrupted run.
	Journal *checkpoint.Journal
}

// DefaultAgents is the agent set a campaign uses when none is given: the
// three Table I configurations.
func DefaultAgents() []string { return []string{"none", "spa", "ipa"} }

// CampaignRow is one completed cell of the campaign matrix.
type CampaignRow struct {
	Scenario  scenarios.Scenario
	AgentName string
	M         *Measurement
	// Err is the cell's failure after isolation and retries (a
	// *runner.CellError wrapping the cause), set only in graceful mode;
	// M is nil when Err is set.
	Err error
}

// CampaignResult is a finished campaign: every row in matrix order
// (scenario-major, agent-minor) plus the outcome of each scenario's
// expected-value checks.
type CampaignResult struct {
	Rows []CampaignRow
	// CheckFailures lists every violated per-scenario check, one line per
	// violation; empty means all checks passed.
	CheckFailures []string
	// Failed counts rows whose cell failed after retries — a campaign
	// with Failed > 0 is partial and exits with ExitPartial.
	Failed int
}

// CellIdentity is everything that determines one campaign cell's
// Measurement: the scenario content, the agent, the effective VM options
// (cost model, engine, heap after the scenario/flag precedence) and the
// repetition parameters. Its checkpoint.CellKey is the content address
// under which the cell journals, resumes, deduplicates and memoizes in
// the persistent result cache: equal keys imply interchangeable
// pure-function evaluations, so a hit skips simulation entirely.
type CellIdentity struct {
	scenarios.Identity
	Agent  string     `json:"agent"`
	Opts   vm.Options `json:"opts"`
	Scale  int        `json:"scale"`
	Runs   int        `json:"runs"`
	Warmup int        `json:"warmup"`
}

// cellKey content-addresses the (scenario, agent) cell under cfg. The
// heap precedence (scenario spec applies only when the flags left the
// heap unset) is baked in by applying it to a copy of the options, so
// two campaigns with the same effective heap share keys.
func cellKey(sc scenarios.Scenario, agent string, cfg Config) (string, error) {
	opts := cfg.Opts
	sc.ApplyHeap(&opts)
	return checkpoint.CellKey(CellIdentity{
		Identity: sc.Identity(),
		Agent:    agent,
		Opts:     opts,
		Scale:    cfg.Scale,
		Runs:     cfg.Runs,
		Warmup:   cfg.Warmup,
	})
}

// Run executes the campaign. emit, when non-nil, receives rows in matrix
// order as soon as each row and all rows before it have finished — the
// streaming form a long campaign renders incrementally. The returned
// result always holds the full row set; per-scenario checks are evaluated
// after the matrix completes.
//
// Failure semantics follow Config.FailFast. In the graceful default, a
// cell that still fails after isolation and retries becomes an error row
// (CampaignRow.Err) and the campaign keeps going; Run returns an error
// only for fatal conditions — context cancellation, a rejected emission,
// or journal setup. With FailFast set, the first cell error aborts the
// campaign and is returned, the pre-PR-7 contract the paper presets use.
func (c Campaign) Run(ctx context.Context, emit func(CampaignRow) error) (*CampaignResult, error) {
	cfg := c.Config.normalized()
	agents := c.Agents
	if len(agents) == 0 {
		agents = DefaultAgents()
	}
	var cells []runner.Cell[*Measurement]
	type cellMeta struct {
		sc    scenarios.Scenario
		agent string
	}
	var meta []cellMeta
	// memo is the per-campaign dedup layer: identical cells (equal
	// content keys — overlapping sweeps, repeated scenario × agent pairs)
	// execute exactly once per process, whether they arrive concurrently
	// (singleflight) or in sequence (memoization).
	memo := new(resultcache.Memo)
	for _, sc := range c.Scenarios {
		for _, agent := range agents {
			sc, agent := sc, agent
			key, err := cellKey(sc, agent, cfg)
			if err != nil {
				return nil, err
			}
			cells = append(cells, runner.Cell[*Measurement]{
				Key:   sc.Name() + "/" + agent,
				Group: sc.Family,
				Do: func(ctx context.Context) (*Measurement, error) {
					return c.runCell(ctx, sc, agent, key, cfg, memo)
				},
			})
			meta = append(meta, cellMeta{sc: sc, agent: agent})
		}
	}
	tel := cfg.Telemetry
	if tel != nil {
		// Mirror the cache's counters into the registry's process family
		// for the lifetime of this campaign.
		cfg.Cache.SetTelemetry(tel)
		// The campaign span is a root on its own lane; Stream gets the
		// original context so each worker's attempt spans claim their own
		// lanes instead of stacking on the campaign's track.
		_, span := tel.StartSpan(ctx, telemetry.CatCampaign, "campaign")
		if span != nil {
			span.Arg("cells", len(cells)).Arg("parallelism", cfg.Parallelism)
			defer span.End()
		}
	}
	var emitErr error
	var streamEmit func(runner.Result[*Measurement]) error
	if emit != nil {
		streamEmit = func(r runner.Result[*Measurement]) error {
			row := CampaignRow{Scenario: meta[r.Index].sc, AgentName: meta[r.Index].agent, M: r.Value, Err: r.Err}
			if err := emit(row); err != nil {
				emitErr = err
				return err
			}
			return nil
		}
	}
	results, err := runner.Stream(ctx, cfg.runnerOptions(), cells, streamEmit)
	if emitErr != nil {
		return nil, emitErr
	}
	if cfg.FailFast && err != nil {
		return nil, err
	}
	if cerr := ctx.Err(); cerr != nil {
		return nil, cerr
	}
	res := &CampaignResult{Rows: make([]CampaignRow, len(results))}
	for i, r := range results {
		res.Rows[i] = CampaignRow{Scenario: meta[i].sc, AgentName: meta[i].agent, M: r.Value, Err: r.Err}
		if tel != nil {
			tel.Count(meta[i].sc.Family, telemetry.MetricCells, 1)
		}
		if r.Err != nil {
			res.Failed++
			if tel != nil {
				tel.Count(meta[i].sc.Family, telemetry.MetricCellsFailed, 1)
			}
		}
	}
	for _, sc := range c.Scenarios {
		res.CheckFailures = append(res.CheckFailures, EvaluateChecks(sc, res.Rows, cfg.Scale)...)
	}
	return res, nil
}

// runCell produces one cell's Measurement, cheapest source first:
//
//  1. the checkpoint journal (an explicit -resume replays it verbatim),
//  2. the persistent result cache — a hit skips simulation entirely,
//     except for the deterministic -cache-verify sample, which
//     re-executes and fails loudly on any byte mismatch,
//  3. memoized execution: identical in-campaign cells run once and
//     share the canonical payload.
//
// Every consumer — leader, dedup follower, cache hit, journal replay —
// decodes its Measurement from the same canonical JSON payload (the
// checkpoint codec round-trips it bit-exactly), so the rendered output
// is byte-identical no matter which source served the cell. Only
// successful, complete payloads ever reach the cache: a failed attempt
// (panic, timeout, injected fault, exhausted retries) returns before
// Put, and retries re-enter this whole path so a transient failure can
// never publish partial state. Host-side cost (wall time, allocated
// bytes) is measured around whichever path ran and stamped on the
// decoded Measurement — never on the cached payload.
func (c Campaign) runCell(ctx context.Context, sc scenarios.Scenario, agent, key string,
	cfg Config, memo *resultcache.Memo) (*Measurement, error) {
	tel := cfg.Telemetry
	if tel == nil {
		m, _, err := c.runCellFrom(ctx, sc, agent, key, cfg, memo)
		return m, err
	}
	ctx, span := tel.StartSpan(ctx, telemetry.CatCampaign, "cell")
	if span != nil {
		span.Arg("cell", sc.Name()+"/"+agent).Arg("family", sc.Family)
	}
	start := time.Now()
	m, source, err := c.runCellFrom(ctx, sc, agent, key, cfg, memo)
	fam := sc.Family
	tel.Observe(fam, telemetry.MetricCellWallNanos, float64(time.Since(start).Nanoseconds()))
	if span != nil {
		if source != "" {
			span.Arg("source", source)
		}
		span.End()
	}
	if err != nil || m == nil {
		return m, err
	}
	// Attribute the serving source per family (the cache itself only
	// counts process-wide), and read the tier/GC seams off the decoded
	// payload — cached and journaled cells carry them too, so the
	// dashboard sees the same tier mix whether the cell ran or was
	// served from disk.
	switch source {
	case "cache":
		tel.Count(fam, telemetry.MetricCacheHits, 1)
	case "journal":
		tel.Count(fam, telemetry.MetricJournalHits, 1)
	case "dedup":
		tel.Count(fam, telemetry.MetricDedupHits, 1)
	case "verify":
		tel.Count(fam, telemetry.MetricVerified, 1)
	default:
		tel.Count(fam, telemetry.MetricRuns, 1)
	}
	tel.Count(fam, telemetry.MetricTierCompiled, m.Tier.MethodsCompiled)
	tel.Count(fam, telemetry.MetricTierOSR, m.Tier.OSREntries)
	tel.Count(fam, telemetry.MetricTierDeopts, m.Tier.DeoptFrames)
	tel.Count(fam, telemetry.MetricTierCompiledFrm, m.Tier.CompiledFrames)
	tel.Count(fam, telemetry.MetricTierInlined, m.Tier.InlinedCalls)
	tel.Count(fam, telemetry.MetricTierFallback, m.Tier.FallbackChunks)
	tel.Count(fam, telemetry.MetricGCMinor, m.GC.MinorGCs)
	tel.Count(fam, telemetry.MetricGCMajor, m.GC.MajorGCs)
	tel.Count(fam, telemetry.MetricGCTenured, m.GC.TenurePromotions)
	if m.GC.Collections() > 0 {
		tel.Observe(fam, telemetry.MetricGCPauseCycles, float64(m.GC.GCCycles))
	}
	return m, nil
}

// runCellFrom is runCell's source-tracking core; the returned source
// names which layer served the cell ("journal", "cache", "verify",
// "dedup" or "run") and is meaningful only on success.
func (c Campaign) runCellFrom(ctx context.Context, sc scenarios.Scenario, agent, key string,
	cfg Config, memo *resultcache.Memo) (*Measurement, string, error) {
	var doneHost func(string) core.HostStats
	if cfg.CellStats {
		doneHost = core.StartHostMeasure()
	}
	decode := func(raw json.RawMessage, source string) (*Measurement, error) {
		m := new(Measurement)
		if err := json.Unmarshal(raw, m); err != nil {
			return nil, fmt.Errorf("harness: corrupt %s payload for %s/%s: %w", source, sc.Name(), agent, err)
		}
		if doneHost != nil {
			m.Host = doneHost(source)
		}
		return m, nil
	}
	execute := func() (json.RawMessage, error) {
		m, err := MeasureScenario(ctx, sc, agent, cfg)
		if err != nil {
			return nil, err
		}
		return checkpoint.CanonicalPayload(m)
	}
	journal := func(raw json.RawMessage) error {
		if c.Journal == nil {
			return nil
		}
		// Journal I/O is environmental, not a property of the cell — mark
		// it transient so retries can ride out a briefly unwritable
		// checkpoint file.
		if err := c.Journal.Append(key, raw); err != nil {
			return runner.Transient(err)
		}
		return nil
	}

	if c.Journal != nil {
		if raw, ok := c.Journal.Lookup(key); ok {
			m, err := decode(raw, "journal")
			return m, "journal", err
		}
	}

	cache := cfg.Cache
	if raw, ok := cache.Get(key); ok {
		if resultcache.VerifySample(key, cfg.CacheVerify) {
			fresh, err := execute()
			if err != nil {
				return nil, "", err
			}
			if err := cache.Verify(key, raw, fresh); err != nil {
				return nil, "", err
			}
			if err := journal(fresh); err != nil {
				return nil, "", err
			}
			m, err := decode(fresh, "verify")
			return m, "verify", err
		}
		if m, err := decode(raw, "cache"); err == nil {
			if err := journal(raw); err != nil {
				return nil, "", err
			}
			return m, "cache", nil
		}
		// A well-formed record wrapping an undecodable Measurement is
		// corruption like any other: fall through to execution as a miss.
	}

	raw, shared, err := memo.Do(key, func() (json.RawMessage, error) {
		raw, err := execute()
		if err != nil {
			return nil, err
		}
		// Cache I/O is environmental, like journal I/O: transient, so a
		// briefly unwritable cache directory spends retries instead of
		// failing the measurement outright.
		if err := cache.Put(key, raw); err != nil {
			return nil, runner.Transient(err)
		}
		return raw, nil
	})
	if shared && err != nil {
		// The identical in-flight cell failed; its error belongs to it,
		// not to us — run our own attempt so per-cell fault injection and
		// retry accounting stay cell-local.
		raw, err = execute()
		if err == nil {
			err = cache.Put(key, raw)
		}
		shared = false
	}
	if err != nil {
		return nil, "", err
	}
	source := "run"
	if shared {
		cache.AddDeduped(1)
		source = "dedup"
	}
	if err := journal(raw); err != nil {
		return nil, "", err
	}
	m, err := decode(raw, source)
	return m, source, err
}

// EvaluateChecks applies a scenario's expected-value checks to the
// campaign rows that belong to it and returns one line per violation.
// Truth-based bounds read the uninstrumented ("none") row when the agent
// set has one, otherwise the scenario's first row; the IPA overhead bound
// needs both a "none" and an "ipa" row and is skipped otherwise.
//
// Count minimums (MinNativeCalls, MinJNICalls) are declared against the
// scenario's full calibrated size; a scaled campaign run divides the
// workload's iteration count by scale (flooring, minimum one iteration),
// so the bounds are divided the same way — floor, kept at least 1 so the
// check never vanishes — before comparison.
func EvaluateChecks(sc scenarios.Scenario, rows []CampaignRow, scale int) []string {
	if scale < 1 {
		scale = 1
	}
	scaled := func(min uint64) uint64 {
		v := min / uint64(scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	var mine []CampaignRow
	for _, r := range rows {
		if r.Scenario.Name() == sc.Name() && r.M != nil {
			mine = append(mine, r)
		}
	}
	if len(mine) == 0 {
		return nil
	}
	byAgent := map[string]*Measurement{}
	for _, r := range mine {
		if _, dup := byAgent[r.AgentName]; !dup {
			byAgent[r.AgentName] = r.M
		}
	}
	base := mine[0].M
	if m, ok := byAgent["none"]; ok {
		base = m
	}

	ck := sc.Checks
	var fails []string
	fail := func(format string, args ...any) {
		fails = append(fails, fmt.Sprintf("%s: ", sc.Name())+fmt.Sprintf(format, args...))
	}
	nativePct := base.Truth.NativeFraction() * 100
	if ck.MinNativePct > 0 && nativePct < ck.MinNativePct {
		fail("native share %.2f%% below expected minimum %.2f%%", nativePct, ck.MinNativePct)
	}
	if ck.MaxNativePct > 0 && nativePct > ck.MaxNativePct {
		fail("native share %.2f%% above expected maximum %.2f%%", nativePct, ck.MaxNativePct)
	}
	if ck.MinNativeCalls > 0 && base.Truth.NativeMethodCalls < scaled(ck.MinNativeCalls) {
		fail("native method calls %d below expected minimum %d (at scale %d)",
			base.Truth.NativeMethodCalls, scaled(ck.MinNativeCalls), scale)
	}
	if ck.MinJNICalls > 0 && base.Truth.JNICalls < scaled(ck.MinJNICalls) {
		fail("JNI calls %d below expected minimum %d (at scale %d)",
			base.Truth.JNICalls, scaled(ck.MinJNICalls), scale)
	}
	if ck.MinThreads > 0 && base.Threads < ck.MinThreads {
		fail("threads %d below expected minimum %d", base.Threads, ck.MinThreads)
	}
	if ck.MinMinorGCs > 0 && base.GC.MinorGCs < scaled(ck.MinMinorGCs) {
		fail("minor collections %d below expected minimum %d (at scale %d)",
			base.GC.MinorGCs, scaled(ck.MinMinorGCs), scale)
	}
	if ck.MinMajorGCs > 0 && base.GC.MajorGCs < scaled(ck.MinMajorGCs) {
		fail("major collections %d below expected minimum %d (at scale %d)",
			base.GC.MajorGCs, scaled(ck.MinMajorGCs), scale)
	}
	if ck.MaxIPAOverheadPct > 0 {
		none, okN := byAgent["none"]
		ipa, okI := byAgent["ipa"]
		if okN && okI && none.MedianCycles > 0 {
			ovh := (ipa.MedianCycles/none.MedianCycles - 1) * 100
			if ovh > ck.MaxIPAOverheadPct {
				fail("IPA overhead %.2f%% above expected maximum %.2f%%", ovh, ck.MaxIPAOverheadPct)
			}
		}
	}
	return fails
}

// CampaignHeader is the column header matching CampaignRow.String, for
// callers that stream rows as they finish. The GC columns are the
// generational heap's minor/major collection counts; legacy-mode rows
// show zeros.
func CampaignHeader() string {
	return fmt.Sprintf("%-18s %-9s %-16s %14s %10s %9s %11s %10s %7s %7s",
		"scenario", "agent", "family", "cycles", "thpt", "native%", "nat calls", "JNI calls",
		"minorGC", "majorGC")
}

// String renders one campaign row as a fixed-width report line. The
// native share is the agent's measurement when a report exists, the
// ground truth otherwise. Failed cells render an error line in the
// metric columns' place — the scenario/agent/family prefix keeps its
// fixed width so partial tables stay aligned.
func (r CampaignRow) String() string {
	if r.Err != nil {
		return fmt.Sprintf("%-18s %-9s %-16s FAILED: %s",
			r.Scenario.Name(), r.AgentName, r.Scenario.Family, errorLine(r.Err))
	}
	if r.M == nil {
		return fmt.Sprintf("%-18s %-9s (no measurement)", r.Scenario.Name(), r.AgentName)
	}
	m := r.M
	nativePct := m.Truth.NativeFraction() * 100
	if m.Report != nil {
		nativePct = m.Report.NativeFraction() * 100
	}
	return fmt.Sprintf("%-18s %-9s %-16s %14.0f %10.1f %8.2f%% %11d %10d %7d %7d",
		r.Scenario.Name(), r.AgentName, r.Scenario.Family,
		m.MedianCycles, m.MedianThroughput, nativePct,
		m.Truth.NativeMethodCalls, m.Truth.JNICalls,
		m.GC.MinorGCs, m.GC.MajorGCs)
}

// CampaignCellStatsHeader is CampaignHeader extended with the opt-in
// -cellstats columns: host-side wall time, Go-heap allocation and the
// source that served the cell (run, cache, verify, journal, dedup).
// These are simulator telemetry, not simulated values, and vary run to
// run — which is why they live behind the flag instead of in the
// byte-identical default layout.
func CampaignCellStatsHeader() string {
	return fmt.Sprintf("%s %10s %11s %8s", CampaignHeader(), "wall(ms)", "alloc(KB)", "source")
}

// CellStatsString renders the row with the -cellstats columns appended.
// Failed rows keep their FAILED form unchanged — there is no meaningful
// host cost to report for an error row.
func (r CampaignRow) CellStatsString() string {
	if r.Err != nil || r.M == nil {
		return r.String()
	}
	src := r.M.Host.Source
	if src == "" {
		src = "run"
	}
	return fmt.Sprintf("%s %10.3f %11.1f %8s", r.String(),
		float64(r.M.Host.WallNanos)/1e6, float64(r.M.Host.AllocBytes)/1024, src)
}

// errorLine flattens err to a single report line: a cell failure's cause
// can carry embedded newlines (a captured panic message, a wrapped I/O
// chain) that would break the fixed-width table.
func errorLine(err error) string {
	s := err.Error()
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		s = s[:i] + " ..."
	}
	return s
}

// RenderChecks formats the check verdict block of a campaign report.
func RenderChecks(failures []string) string {
	if len(failures) == 0 {
		return "checks: PASS\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "checks: %d FAILED\n", len(failures))
	for _, f := range failures {
		fmt.Fprintf(&b, "  FAIL %s\n", f)
	}
	return b.String()
}

// RenderCampaign formats a campaign result as a plain-text report: one
// row per scenario × agent with the core metrics, then the check verdict.
// Empty campaigns are an error, mirroring the table renderers.
func RenderCampaign(res *CampaignResult) (string, error) {
	if res == nil || len(res.Rows) == 0 {
		return "", fmt.Errorf("harness: campaign produced no rows to render")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "CAMPAIGN RESULTS\n%s\n", CampaignHeader())
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%s\n", r)
	}
	if res.Failed > 0 {
		fmt.Fprintf(&b, "\npartial: %d of %d cells failed\n", res.Failed, len(res.Rows))
	}
	b.WriteByte('\n')
	b.WriteString(RenderChecks(res.CheckFailures))
	return b.String(), nil
}
