package harness

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/runner"
	"repro/internal/workloads"
)

// SweepPoint is one measurement of the transition-frequency sweep.
type SweepPoint struct {
	// NativeCallsPerIter is the swept parameter.
	NativeCallsPerIter int
	// TransitionsPerMcycle is the resulting J2N transition frequency.
	TransitionsPerMcycle float64
	// IPAOverheadPct is IPA's overhead at this frequency.
	IPAOverheadPct float64
	// MeasuredNativePct is what IPA reports.
	MeasuredNativePct float64
	// TruthNativePct is the unperturbed ground truth.
	TruthNativePct float64
}

// SweepTransitionFrequency measures IPA overhead as a function of the
// workload's bytecode/native transition frequency — the mechanism behind
// Table I's IPA column: overhead is proportional to transitions, not to
// time ("Except for transitions between bytecode and native code, there
// is no overhead", Section V-A). The sweep holds per-iteration bytecode
// work constant and varies native calls per iteration.
func SweepTransitionFrequency(callsPerIter []int, cfg Config) ([]SweepPoint, error) {
	return SweepTransitionFrequencyContext(context.Background(), callsPerIter, cfg)
}

// SweepTransitionFrequencyContext is the sweep with cooperative
// cancellation; sweep points are independent cells and run on the worker
// pool like the table campaigns.
func SweepTransitionFrequencyContext(ctx context.Context, callsPerIter []int, cfg Config) ([]SweepPoint, error) {
	cfg = cfg.normalized()
	// The sweep consumes runner.Values, which is only valid for an
	// all-success batch; like the paper grids it fails fast.
	cfg.FailFast = true
	results, err := runner.Map(ctx, cfg.runnerOptions(), callsPerIter,
		func(n int) string { return fmt.Sprintf("sweep-%d", n) },
		func(ctx context.Context, n int) (SweepPoint, error) {
			return sweepPoint(ctx, n, cfg)
		})
	if err != nil {
		return nil, err
	}
	return runner.Values(results), nil
}

// sweepPoint measures one point of the sweep: an uninstrumented run for
// the baseline and ground truth, and an IPA run for overhead and the
// measured native fraction.
func sweepPoint(ctx context.Context, n int, cfg Config) (SweepPoint, error) {
	spec := workloads.Spec{
		Name: fmt.Sprintf("sweep-%d", n), ClassName: "sweep/W",
		OuterIters: 4000 / cfg.Scale, CallsPerIter: 4, WorkPerCall: 25,
		NativeCallsPerIter: n, NativeWork: 20,
	}
	if spec.OuterIters < 1 {
		spec.OuterIters = 1
	}
	plainProg, err := workloads.Build(spec)
	if err != nil {
		return SweepPoint{}, err
	}
	plain, err := core.RunContext(ctx, plainProg, nil, cfg.Opts)
	if err != nil {
		return SweepPoint{}, err
	}
	profProg, err := workloads.Build(spec)
	if err != nil {
		return SweepPoint{}, err
	}
	prof, err := core.RunContext(ctx, profProg, newAgent(AgentIPA), cfg.Opts)
	if err != nil {
		return SweepPoint{}, err
	}
	pt := SweepPoint{
		NativeCallsPerIter: n,
		IPAOverheadPct:     (float64(prof.TotalCycles)/float64(plain.TotalCycles) - 1) * 100,
		MeasuredNativePct:  prof.Report.NativeFraction() * 100,
		TruthNativePct:     plain.Truth.NativeFraction() * 100,
	}
	if plain.TotalCycles > 0 {
		pt.TransitionsPerMcycle = float64(plain.Truth.NativeMethodCalls) /
			(float64(plain.TotalCycles) / 1e6)
	}
	return pt, nil
}

// RenderSweep formats the sweep as a small table with an ASCII bar per
// row, the reproduction's stand-in for an overhead-vs-frequency figure.
func RenderSweep(points []SweepPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "IPA overhead vs transition frequency\n")
	fmt.Fprintf(&b, "%6s %16s %12s %12s %10s\n",
		"nc/it", "trans/Mcycle", "overhead", "measured%", "truth%")
	maxOvh := 0.0
	for _, p := range points {
		if p.IPAOverheadPct > maxOvh {
			maxOvh = p.IPAOverheadPct
		}
	}
	for _, p := range points {
		bar := ""
		if maxOvh > 0 {
			bar = strings.Repeat("#", int(p.IPAOverheadPct/maxOvh*30+0.5))
		}
		fmt.Fprintf(&b, "%6d %16.0f %11.2f%% %11.2f%% %9.2f%%  %s\n",
			p.NativeCallsPerIter, p.TransitionsPerMcycle,
			p.IPAOverheadPct, p.MeasuredNativePct, p.TruthNativePct, bar)
	}
	return b.String()
}
