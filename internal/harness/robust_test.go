package harness

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/jit"
	"repro/internal/runner"
	"repro/internal/scenarios"
	"repro/internal/vm"
)

// robustScenarios is a small paper-profile slice used by the robustness
// tests: big enough to have multiple rows per run, small enough to keep
// the matrix cheap at scale 8.
func robustScenarios(t *testing.T) []scenarios.Scenario {
	t.Helper()
	suite, err := scenarios.Profile("paper")
	if err != nil {
		t.Fatal(err)
	}
	if len(suite) < 2 {
		t.Fatalf("paper profile has %d scenarios", len(suite))
	}
	return suite[:2]
}

// TestCampaignGracefulPanic proves an injected panic in one cell never
// aborts the campaign: the partial table renders with the failed row
// marked and every other cell measured.
func TestCampaignGracefulPanic(t *testing.T) {
	suite := robustScenarios(t)
	badKey := suite[0].Name() + "/ipa"
	cfg := DefaultConfig()
	cfg.Scale = 8
	cfg.Runs = 1
	cfg.Hook = faultinject.New(1, faultinject.Fault{Kind: faultinject.Panic, Match: badKey}).Hook()
	camp := Campaign{Scenarios: suite, Config: cfg}

	var emitted []CampaignRow
	res, err := camp.Run(context.Background(), func(r CampaignRow) error {
		emitted = append(emitted, r)
		return nil
	})
	if err != nil {
		t.Fatalf("graceful campaign returned fatal error: %v", err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Failed)
	}
	if len(emitted) != len(res.Rows) {
		t.Fatalf("emitted %d rows, want all %d (failed rows included)", len(emitted), len(res.Rows))
	}
	for _, r := range res.Rows {
		key := r.Scenario.Name() + "/" + r.AgentName
		if key == badKey {
			var ce *runner.CellError
			if !errors.As(r.Err, &ce) || len(ce.Stack) == 0 {
				t.Fatalf("failed row err = %v, want CellError with stack", r.Err)
			}
			if r.M != nil {
				t.Error("failed row carries a measurement")
			}
		} else if r.Err != nil || r.M == nil {
			t.Fatalf("row %s: err=%v m=%v — panic leaked into other cells", key, r.Err, r.M)
		}
	}
	out, err := RenderCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FAILED: ") || !strings.Contains(out, "partial: 1 of") {
		t.Errorf("partial table missing failure markers:\n%s", out)
	}
}

// TestCampaignGracefulDeadline proves a deadline overrun in one cell is
// contained the same way.
func TestCampaignGracefulDeadline(t *testing.T) {
	suite := robustScenarios(t)
	slowKey := suite[1].Name() + "/none"
	cfg := DefaultConfig()
	cfg.Scale = 8
	cfg.Runs = 1
	// Generous deadline: the healthy cell must finish well inside it even
	// under -race, while the delayed cell blocks far past it.
	cfg.CellTimeout = 2 * time.Second
	cfg.Hook = faultinject.New(1, faultinject.Fault{Kind: faultinject.Delay, Match: slowKey}).Hook()
	camp := Campaign{Scenarios: suite, Agents: []string{"none"}, Config: cfg}
	res, err := camp.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("graceful campaign returned fatal error: %v", err)
	}
	if res.Failed != 1 {
		t.Fatalf("Failed = %d, want 1", res.Failed)
	}
	for _, r := range res.Rows {
		if r.Scenario.Name()+"/"+r.AgentName == slowKey {
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Fatalf("slow row err = %v, want DeadlineExceeded", r.Err)
			}
		} else if r.Err != nil {
			t.Fatalf("row %s failed: %v", r.Scenario.Name(), r.Err)
		}
	}
}

// TestCampaignTransientRetrySucceeds proves a transiently failing cell
// recovers under Config.MaxRetries with no trace in the output.
func TestCampaignTransientRetrySucceeds(t *testing.T) {
	suite := robustScenarios(t)
	cfg := DefaultConfig()
	cfg.Scale = 8
	cfg.Runs = 1
	cfg.MaxRetries = 2
	camp := Campaign{Scenarios: suite, Agents: []string{"none"}, Config: cfg}

	base, err := camp.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RenderCampaign(base)
	if err != nil {
		t.Fatal(err)
	}

	cfg.Hook = faultinject.New(1, faultinject.Fault{Kind: faultinject.Transient, Match: suite[0].Name(), Attempts: 2}).Hook()
	camp.Config = cfg
	res, err := camp.Run(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("Failed = %d after retries, want 0", res.Failed)
	}
	got, err := RenderCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Error("retried campaign output differs from clean run")
	}
}

// TestCampaignFailFastPreserved pins the pre-PR-7 contract the paper
// presets rely on: with FailFast set, the first cell error aborts.
func TestCampaignFailFastPreserved(t *testing.T) {
	suite := robustScenarios(t)
	cfg := DefaultConfig()
	cfg.Scale = 8
	cfg.Runs = 1
	cfg.FailFast = true
	cfg.Hook = faultinject.New(1, faultinject.Fault{Kind: faultinject.Panic, Match: suite[0].Name()}).Hook()
	camp := Campaign{Scenarios: suite, Agents: []string{"none"}, Config: cfg}
	if _, err := camp.Run(context.Background(), nil); err == nil {
		t.Fatal("FailFast campaign swallowed the cell error")
	}
}

// runJournaled runs the campaign against the journal at path and returns
// the rendered output.
func runJournaled(t *testing.T, camp Campaign, path string, resume bool) (string, *checkpoint.Journal, error) {
	t.Helper()
	j, err := checkpoint.Open(path, resume)
	if err != nil {
		t.Fatal(err)
	}
	camp.Journal = j
	res, err := camp.Run(context.Background(), nil)
	if err != nil {
		return "", j, err
	}
	out, err := RenderCampaign(res)
	if err != nil {
		t.Fatal(err)
	}
	return out, j, nil
}

// TestCampaignCrashResumeByteIdentical is the in-process kill-and-resume
// proof at scale 8: a campaign killed between cells by the crash
// injector resumes from its journal and renders byte-identical output to
// an uninterrupted run — for sequential and parallel execution, under
// every engine (interp, jit, auto).
func TestCampaignCrashResumeByteIdentical(t *testing.T) {
	// More cells than the widest worker pool below: when the crash fires,
	// in-flight cells may still complete and journal, so only a matrix
	// larger than parallelism + crash point guarantees unjournaled cells
	// remain for the resume to prove itself on.
	full, err := scenarios.Profile("paper")
	if err != nil {
		t.Fatal(err)
	}
	if len(full) < 4 {
		t.Fatalf("paper profile has %d scenarios", len(full))
	}
	suite := full[:4]
	for _, eng := range []string{"interp", "jit", "auto"} {
		for _, par := range []int{1, 4} {
			t.Run(eng+"-par"+string(rune('0'+par)), func(t *testing.T) {
				cfg := DefaultConfig()
				cfg.Scale = 8
				cfg.Runs = 1
				cfg.Parallelism = par
				var err error
				if cfg.Opts.Tier, err = jit.ParseEngine(eng); err != nil {
					t.Fatal(err)
				}
				camp := Campaign{Scenarios: suite, Agents: []string{"none", "ipa"}, Config: cfg}

				// Uninterrupted baseline, no journal.
				base, err := camp.Run(context.Background(), nil)
				if err != nil {
					t.Fatal(err)
				}
				want, err := RenderCampaign(base)
				if err != nil {
					t.Fatal(err)
				}

				// Crash run: the injector "kills the process" after 2 cells by
				// cancelling the campaign context — the in-process stand-in for
				// os.Exit, leaving the journal exactly as a dead process would.
				path := filepath.Join(t.TempDir(), "journal.jsonl")
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				old := faultinject.CrashFunc
				faultinject.CrashFunc = cancel
				crashCfg := cfg
				crashCfg.Hook = faultinject.New(1, faultinject.Fault{Kind: faultinject.Crash, After: 2}).Hook()
				j, err := checkpoint.Open(path, false)
				if err != nil {
					t.Fatal(err)
				}
				crashCamp := camp
				crashCamp.Config = crashCfg
				crashCamp.Journal = j
				if _, err := crashCamp.Run(ctx, nil); err == nil {
					t.Fatal("crashed campaign reported success")
				}
				j.Close()
				faultinject.CrashFunc = old

				interrupted, err := checkpoint.Open(path, true)
				if err != nil {
					t.Fatal(err)
				}
				if interrupted.Len() < 2 {
					t.Fatalf("journal holds %d cells after crash, want ≥2", interrupted.Len())
				}
				if interrupted.Len() >= len(suite)*2 {
					t.Fatalf("journal holds all %d cells — crash fired too late to prove resume", interrupted.Len())
				}
				interrupted.Close()

				// Resume: same campaign, same journal, no faults.
				got, j2, err := runJournaled(t, camp, path, true)
				if err != nil {
					t.Fatalf("resume failed: %v", err)
				}
				defer j2.Close()
				if got != want {
					t.Errorf("resumed output differs from uninterrupted run\n--- want ---\n%s--- got ---\n%s", want, got)
				}
			})
		}
	}
}

// TestCampaignResumeServesFromJournal proves a second run over a complete
// journal re-runs nothing: the journal file does not grow (every cell hit
// Lookup, none re-measured and re-appended) and output is byte-identical.
func TestCampaignResumeServesFromJournal(t *testing.T) {
	suite := robustScenarios(t)
	cfg := DefaultConfig()
	cfg.Scale = 8
	cfg.Runs = 1
	camp := Campaign{Scenarios: suite, Agents: []string{"none"}, Config: cfg}
	path := filepath.Join(t.TempDir(), "journal.jsonl")

	first, j1, err := runJournaled(t, camp, path, false)
	if err != nil {
		t.Fatal(err)
	}
	j1.Close()
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}

	second, j2, err := runJournaled(t, camp, path, true)
	if err != nil {
		t.Fatal(err)
	}
	j2.Close()
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Error("journal-served output differs from measured output")
	}
	if after.Size() != before.Size() {
		t.Errorf("journal grew %d → %d bytes on resume — cells were re-run", before.Size(), after.Size())
	}
}

// TestCellKeyPrecedence proves the content address respects the
// heap-precedence rule and moves when any identity component moves.
func TestCellKeyPrecedence(t *testing.T) {
	suite := robustScenarios(t)
	cfg := DefaultConfig()
	k1, err := cellKey(suite[0], "none", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k2, _ := cellKey(suite[0], "none", cfg); k2 != k1 {
		t.Fatal("cell key not deterministic")
	}
	variants := []Config{}
	c := cfg
	c.Scale = 4
	variants = append(variants, c)
	c = cfg
	c.Runs = 5
	variants = append(variants, c)
	c = cfg
	c.Opts.Heap = vm.HeapConfig{NurseryWords: 4096, TenuredWords: 65536, TenureAge: 2}
	variants = append(variants, c)
	for i, v := range variants {
		if k, _ := cellKey(suite[0], "none", v); k == k1 {
			t.Errorf("variant %d did not move the cell key", i)
		}
	}
	if k, _ := cellKey(suite[0], "ipa", cfg); k == k1 {
		t.Error("agent change did not move the cell key")
	}
	if k, _ := cellKey(suite[1], "none", cfg); k == k1 {
		t.Error("scenario change did not move the cell key")
	}
}
