package instrument

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/vm"
)

// TestWideSignatureWrapper exercises wrapper generation for a native
// method with many parameters of mixed types, both static and instance,
// and runs them end to end.
func TestWideSignatureWrapper(t *testing.T) {
	cfg := Config{}.withDefaults()
	cls := &classfile.Class{
		Name: "w/Wide",
		Methods: []*classfile.Method{
			{Name: "sum6", Desc: "(IJIJIJ)J",
				Flags: classfile.AccStatic | classfile.AccNative},
			{Name: "isum4", Desc: "(IIII)I",
				Flags: classfile.AccPublic | classfile.AccNative}, // instance
		},
	}
	out, wrapped, err := Class(cls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != 2 {
		t.Fatalf("wrapped = %d", wrapped)
	}
	if err := bytecode.VerifyClass(out); err != nil {
		t.Fatal(err)
	}
	w6 := out.Method("sum6", "(IJIJIJ)J")
	if w6.MaxLocals != 6 {
		t.Fatalf("static wrapper MaxLocals = %d, want 6", w6.MaxLocals)
	}
	wi := out.Method("isum4", "(IIII)I")
	if wi.MaxLocals != 5 { // receiver + 4
		t.Fatalf("instance wrapper MaxLocals = %d, want 5", wi.MaxLocals)
	}

	v := vm.New(vm.DefaultOptions())
	if err := v.SetNativeMethodPrefix(cfg.Prefix); err != nil {
		t.Fatal(err)
	}
	if err := v.LoadClasses([]*classfile.Class{out, RuntimeClassDef(cfg)}); err != nil {
		t.Fatal(err)
	}
	noop := func(env vm.Env, args []int64) (int64, error) { return 0, nil }
	v.RegisterNative(cfg.RuntimeClass, J2NBegin, "()V", noop)
	v.RegisterNative(cfg.RuntimeClass, J2NEnd, "()V", noop)
	v.RegisterNative("w/Wide", "sum6", "(IJIJIJ)J", func(env vm.Env, args []int64) (int64, error) {
		var s int64
		for _, a := range args {
			s += a
		}
		return s, nil
	})
	v.RegisterNative("w/Wide", "isum4", "(IIII)I", func(env vm.Env, args []int64) (int64, error) {
		// args[0] is the receiver handle.
		return args[0]*1000 + args[1] + args[2] + args[3] + args[4], nil
	})

	got, err := v.Run("w/Wide", "sum6", "(IJIJIJ)J", 1, 2, 3, 4, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got != 21 {
		t.Fatalf("sum6 = %d, want 21", got)
	}

	th := v.NewDetachedThread("t")
	got, err = th.InvokeVirtual("w/Wide", "isum4", "(IIII)I", 7, 1, 2, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 7010 {
		t.Fatalf("isum4 = %d, want 7010", got)
	}
}

// TestZeroArgVoidWrapper covers the smallest possible wrapper.
func TestZeroArgVoidWrapper(t *testing.T) {
	cfg := Config{}.withDefaults()
	cls := &classfile.Class{
		Name: "w/Tiny",
		Methods: []*classfile.Method{
			{Name: "ping", Desc: "()V", Flags: classfile.AccStatic | classfile.AccNative},
		},
	}
	out, wrapped, err := Class(cls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != 1 {
		t.Fatalf("wrapped = %d", wrapped)
	}
	w := out.Method("ping", "()V")
	if w == nil || w.MaxLocals != 0 {
		t.Fatalf("wrapper = %+v", w)
	}
	v := vm.New(vm.DefaultOptions())
	if err := v.SetNativeMethodPrefix(cfg.Prefix); err != nil {
		t.Fatal(err)
	}
	if err := v.LoadClasses([]*classfile.Class{out, RuntimeClassDef(cfg)}); err != nil {
		t.Fatal(err)
	}
	var pinged bool
	noop := func(env vm.Env, args []int64) (int64, error) { return 0, nil }
	v.RegisterNative(cfg.RuntimeClass, J2NBegin, "()V", noop)
	v.RegisterNative(cfg.RuntimeClass, J2NEnd, "()V", noop)
	v.RegisterNative("w/Tiny", "ping", "()V", func(env vm.Env, args []int64) (int64, error) {
		pinged = true
		return 0, nil
	})
	if _, err := v.Run("w/Tiny", "ping", "()V"); err != nil {
		t.Fatal(err)
	}
	if !pinged {
		t.Fatal("native not reached through wrapper")
	}
}
