package instrument

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/vm"
)

// nativeClass builds a class with one bytecode method and two native
// methods (one static, one instance, one returning a value).
func nativeClass(t *testing.T) *classfile.Class {
	t.Helper()
	a := bytecode.NewAssembler()
	a.Return()
	plain, err := a.FinishMethod("plain", "()V", classfile.AccStatic, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &classfile.Class{
		Name: "w/Native",
		Methods: []*classfile.Method{
			plain,
			{Name: "compute", Desc: "(IJ)J", Flags: classfile.AccPublic | classfile.AccStatic | classfile.AccNative},
			{Name: "touch", Desc: "(I)V", Flags: classfile.AccPublic | classfile.AccNative},
		},
	}
}

func TestClassWrapsNativeMethods(t *testing.T) {
	c := nativeClass(t)
	out, wrapped, err := Class(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != 2 {
		t.Fatalf("wrapped = %d, want 2", wrapped)
	}
	// Original object untouched.
	if c.Method("compute", "(IJ)J") == nil {
		t.Fatal("input class was mutated")
	}
	// Rewritten class: renamed native + synthetic wrapper under old name.
	renamed := out.Method(DefaultPrefix+"compute", "(IJ)J")
	if renamed == nil || !renamed.IsNative() {
		t.Fatal("renamed native method missing")
	}
	w := out.Method("compute", "(IJ)J")
	if w == nil {
		t.Fatal("wrapper missing")
	}
	if w.IsNative() {
		t.Fatal("wrapper still native")
	}
	if !w.Flags.Has(classfile.AccSynthetic) {
		t.Fatal("wrapper not marked synthetic")
	}
	if len(w.Handlers) != 1 {
		t.Fatalf("wrapper handlers = %d, want 1 (finally)", len(w.Handlers))
	}
}

func TestWrapperBytecodeShape(t *testing.T) {
	c := nativeClass(t)
	out, _, err := Class(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	w := out.Method("compute", "(IJ)J")
	text, err := bytecode.Disassemble(w)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		DefaultRuntimeClass + "." + J2NBegin + "()V",
		DefaultRuntimeClass + "." + J2NEnd + "()V",
		DefaultPrefix + "compute(IJ)J",
		"ireturn",
		"throw",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("wrapper missing %q:\n%s", want, text)
		}
	}
	// J2N_End must appear twice: normal path + finally handler.
	if n := strings.Count(text, J2NEnd+"()V"); n != 2 {
		t.Errorf("J2N_End appears %d times, want 2:\n%s", n, text)
	}
}

func TestInstanceWrapperUsesInvokeVirtual(t *testing.T) {
	c := nativeClass(t)
	out, _, err := Class(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	w := out.Method("touch", "(I)V")
	if w == nil {
		t.Fatal("instance wrapper missing")
	}
	text, err := bytecode.Disassemble(w)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "invokevirtual") {
		t.Fatalf("instance wrapper does not invokevirtual:\n%s", text)
	}
	// Receiver + 1 arg = 2 locals.
	if w.MaxLocals != 2 {
		t.Fatalf("MaxLocals = %d, want 2", w.MaxLocals)
	}
}

func TestClassWithoutNativesUnchanged(t *testing.T) {
	a := bytecode.NewAssembler()
	a.Return()
	m, err := a.FinishMethod("m", "()V", classfile.AccStatic, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c := &classfile.Class{Name: "p/Plain", Methods: []*classfile.Method{m}}
	out, wrapped, err := Class(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != 0 || out != c {
		t.Fatal("pure-bytecode class was rewritten")
	}
}

func TestRuntimeClassExcluded(t *testing.T) {
	rt := RuntimeClassDef(Config{})
	out, wrapped, err := Class(rt, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != 0 || out != rt {
		t.Fatal("runtime class was instrumented")
	}
}

func TestIdempotent(t *testing.T) {
	c := nativeClass(t)
	once, _, err := Class(c, Config{})
	if err != nil {
		t.Fatal(err)
	}
	twice, wrapped, err := Class(once, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if wrapped != 0 || twice != once {
		t.Fatal("second instrumentation pass rewrote the class again")
	}
}

func TestCustomPrefixAndRuntime(t *testing.T) {
	cfg := Config{Prefix: "_wct_", RuntimeClass: "my/RT"}
	out, _, err := Class(nativeClass(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if out.Method("_wct_compute", "(IJ)J") == nil {
		t.Fatal("custom prefix not applied")
	}
	text, _ := bytecode.Disassemble(out.Method("compute", "(IJ)J"))
	if !strings.Contains(text, "my/RT.J2N_Begin()V") {
		t.Fatalf("custom runtime class not used:\n%s", text)
	}
}

func TestClassesStats(t *testing.T) {
	a := bytecode.NewAssembler()
	a.Return()
	plain, err := a.FinishMethod("m", "()V", classfile.AccStatic, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	set := []*classfile.Class{
		nativeClass(t),
		{Name: "p/Plain", Methods: []*classfile.Method{plain}},
		RuntimeClassDef(Config{}),
	}
	out, st, err := Classes(set, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 {
		t.Fatalf("out = %d classes", len(out))
	}
	if st.ClassesScanned != 3 || st.ClassesChanged != 1 || st.MethodsWrapped != 2 || st.Skipped != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArchiveRoundTrip(t *testing.T) {
	var in bytes.Buffer
	if err := classfile.WriteArchive(&in, []*classfile.Class{nativeClass(t)}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	st, err := Archive(&in, &out, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MethodsWrapped != 2 {
		t.Fatalf("stats = %+v", st)
	}
	classes, err := classfile.ReadArchive(&out)
	if err != nil {
		t.Fatal(err)
	}
	if classes[0].Method(DefaultPrefix+"compute", "(IJ)J") == nil {
		t.Fatal("archive output not instrumented")
	}
}

func TestArchiveBadInput(t *testing.T) {
	var out bytes.Buffer
	if _, err := Archive(bytes.NewReader([]byte("junk")), &out, Config{}); err == nil {
		t.Fatal("junk archive accepted")
	}
}

func TestLoadHookTransformsOnlyNativeClasses(t *testing.T) {
	hook := LoadHook(Config{})
	if got := hook(nativeClass(t)); got == nil {
		t.Fatal("hook did not transform native class")
	} else if got.Method(DefaultPrefix+"compute", "(IJ)J") == nil {
		t.Fatal("hook transformation incomplete")
	}
	a := bytecode.NewAssembler()
	a.Return()
	m, _ := a.FinishMethod("m", "()V", classfile.AccStatic, 0, nil)
	if hook(&classfile.Class{Name: "p/P", Methods: []*classfile.Method{m}}) != nil {
		t.Fatal("hook transformed a class without natives")
	}
}

// TestWrapperEndToEnd runs an instrumented class on the VM and checks that
// the transition signals fire in the right order, including on the
// exception path.
func TestWrapperEndToEnd(t *testing.T) {
	cfg := Config{}.withDefaults()
	classes, _, err := Classes([]*classfile.Class{nativeClass(t)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(vm.DefaultOptions())
	if err := v.SetNativeMethodPrefix(cfg.Prefix); err != nil {
		t.Fatal(err)
	}
	if err := v.LoadClasses(append(classes, RuntimeClassDef(cfg))); err != nil {
		t.Fatal(err)
	}
	var log []string
	v.RegisterNative(cfg.RuntimeClass, J2NBegin, "()V", func(env vm.Env, args []int64) (int64, error) {
		log = append(log, "begin")
		return 0, nil
	})
	v.RegisterNative(cfg.RuntimeClass, J2NEnd, "()V", func(env vm.Env, args []int64) (int64, error) {
		log = append(log, "end")
		return 0, nil
	})
	v.RegisterNative("w/Native", "compute", "(IJ)J", func(env vm.Env, args []int64) (int64, error) {
		log = append(log, "native")
		return args[0] + args[1], nil
	})
	got, err := v.Run("w/Native", "compute", "(IJ)J", 30, 12)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("compute = %d, want 42", got)
	}
	want := []string{"begin", "native", "end"}
	if len(log) != 3 || log[0] != want[0] || log[1] != want[1] || log[2] != want[2] {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

func TestWrapperFinallyOnException(t *testing.T) {
	cfg := Config{}.withDefaults()
	classes, _, err := Classes([]*classfile.Class{nativeClass(t)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(vm.DefaultOptions())
	if err := v.SetNativeMethodPrefix(cfg.Prefix); err != nil {
		t.Fatal(err)
	}
	if err := v.LoadClasses(append(classes, RuntimeClassDef(cfg))); err != nil {
		t.Fatal(err)
	}
	var endFired int
	v.RegisterNative(cfg.RuntimeClass, J2NBegin, "()V", func(env vm.Env, args []int64) (int64, error) {
		return 0, nil
	})
	v.RegisterNative(cfg.RuntimeClass, J2NEnd, "()V", func(env vm.Env, args []int64) (int64, error) {
		endFired++
		return 0, nil
	})
	v.RegisterNative("w/Native", "compute", "(IJ)J", func(env vm.Env, args []int64) (int64, error) {
		return 0, vm.Throw(5, "native blew up")
	})
	_, err = v.Run("w/Native", "compute", "(IJ)J", 1, 2)
	th, ok := vm.AsThrown(err)
	if !ok || th.Value != 5 {
		t.Fatalf("err = %v, want rethrown Thrown(5)", err)
	}
	// The finally handler must have signalled J2N_End exactly once.
	if endFired != 1 {
		t.Fatalf("J2N_End fired %d times on exception path, want 1", endFired)
	}
}
