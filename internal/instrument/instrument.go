// Package instrument implements the bytecode instrumentation tool of
// Section IV: for every native method it generates a Java wrapper method
// (Figure 2) that brackets the call with J2N_Begin/J2N_End transition
// signals, renames the original native method with the announced prefix,
// and relies on the VM's native-method-prefix resolution to keep linking
// against the unchanged native library.
//
// The package supports both deployment modes discussed in the paper:
// ahead-of-time ("static") instrumentation of classes and archives — the
// mode the authors adopt — and load-time ("dynamic") instrumentation via
// the JVMTI ClassFileLoadHook, provided for the ablation experiment.
package instrument

import (
	"fmt"
	"io"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// DefaultPrefix is the native-method prefix used when none is configured.
// Like the paper's prefix, it is chosen not to occur in ordinary method
// names.
const DefaultPrefix = "$$ipa$$_"

// DefaultRuntimeClass is the class declaring the transition-signal methods
// the generated wrappers call. The IPA agent registers its native
// implementations; the class itself is excluded from instrumentation
// (Section IV: "this special class is excluded from instrumentation").
const DefaultRuntimeClass = "repro/ipa/Runtime"

// Transition-signal method names on the runtime class.
const (
	J2NBegin = "J2N_Begin"
	J2NEnd   = "J2N_End"
)

// Config parameterizes the instrumenter.
type Config struct {
	// Prefix is prepended to native method names. It must be announced
	// to the VM via SetNativeMethodPrefix before the renamed methods are
	// linked.
	Prefix string
	// RuntimeClass declares static native void J2N_Begin()/J2N_End().
	RuntimeClass string
	// Methods, when non-nil, switches wrappers to the method-identified
	// transition signals J2N_BeginM(J)V / J2N_EndM(J)V, passing the id
	// assigned by this registry. The agent uses the same registry to
	// resolve ids back to names for per-method reports.
	Methods *Registry
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Prefix == "" {
		c.Prefix = DefaultPrefix
	}
	if c.RuntimeClass == "" {
		c.RuntimeClass = DefaultRuntimeClass
	}
	return c
}

// Stats summarizes one instrumentation pass.
type Stats struct {
	// ClassesScanned counts classes examined.
	ClassesScanned int
	// ClassesChanged counts classes that declared native methods and were
	// rewritten.
	ClassesChanged int
	// MethodsWrapped counts generated wrapper methods.
	MethodsWrapped int
	// Skipped counts classes exempted from instrumentation (the runtime
	// class and already-instrumented classes).
	Skipped int
}

// Class instruments a single class, returning a rewritten copy (the input
// is never mutated) and the number of wrapped methods. Classes without
// native methods, the runtime class itself, and classes that already carry
// prefixed methods are returned unchanged.
func Class(c *classfile.Class, cfg Config) (*classfile.Class, int, error) {
	cfg = cfg.withDefaults()
	if c.Name == cfg.RuntimeClass {
		return c, 0, nil
	}
	if !c.HasNativeMethod() {
		return c, 0, nil
	}
	if alreadyInstrumented(c, cfg.Prefix) {
		return c, 0, nil
	}
	out := c.Clone()
	var wrapped int
	var newMethods []*classfile.Method
	for _, m := range out.Methods {
		if !m.IsNative() {
			newMethods = append(newMethods, m)
			continue
		}
		origName := m.Name
		// Rename the native method: the VM's prefix-resolution retry
		// re-links it against the unchanged native library symbol.
		m.Name = cfg.Prefix + origName
		wrapper, err := WrapNativeMethod(out.Name, origName, m, cfg)
		if err != nil {
			return nil, 0, fmt.Errorf("instrument: %s.%s: %w", c.Name, origName, err)
		}
		newMethods = append(newMethods, m, wrapper)
		wrapped++
	}
	out.Methods = newMethods
	if err := bytecode.VerifyClass(out); err != nil {
		return nil, 0, fmt.Errorf("instrument: rewritten %s fails verification: %w", c.Name, err)
	}
	return out, wrapped, nil
}

// alreadyInstrumented detects a class that has been through the tool: any
// method carrying the prefix marks it.
func alreadyInstrumented(c *classfile.Class, prefix string) bool {
	for _, m := range c.Methods {
		if len(m.Name) > len(prefix) && m.Name[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// WrapNativeMethod generates the Figure 2 wrapper for a native method that
// has already been renamed to cfg.Prefix+origName. The wrapper has the
// original name and descriptor, is not native, and:
//
//	IPA.J2N_Begin();
//	try {
//	    return $$ipa$$_orig(args...);
//	} finally {
//	    IPA.J2N_End();
//	}
//
// The finally clause is realized as a catch-all exception handler that
// signals J2N_End and rethrows, ensuring the transition is recorded even
// on exceptional exit.
func WrapNativeMethod(className, origName string, renamed *classfile.Method, cfg Config) (*classfile.Method, error) {
	cfg = cfg.withDefaults()
	d, err := classfile.ParseDescriptor(renamed.Desc)
	if err != nil {
		return nil, err
	}
	argWords := d.ParamWords
	static := renamed.IsStatic()
	if !static {
		argWords++ // receiver in slot 0
	}

	var methodID int64
	if cfg.Methods != nil {
		methodID = cfg.Methods.IDFor(className + "." + origName + renamed.Desc)
	}
	signal := func(a *bytecode.Assembler, name, nameM string) {
		if cfg.Methods != nil {
			a.Const(methodID)
			a.InvokeStatic(cfg.RuntimeClass, nameM, "(J)V")
		} else {
			a.InvokeStatic(cfg.RuntimeClass, name, "()V")
		}
	}

	a := bytecode.NewAssembler()
	// IPA.J2N_Begin() — outside the protected region, as in Figure 2.
	signal(a, J2NBegin, J2NBeginM)

	tryStart := a.Offset()
	for i := 0; i < argWords; i++ {
		a.Load(i)
	}
	if static {
		a.InvokeStatic(className, renamed.Name, renamed.Desc)
	} else {
		a.InvokeVirtual(className, renamed.Name, renamed.Desc)
	}
	tryEnd := a.Offset()

	// Normal completion: signal the end transition, then return.
	signal(a, J2NEnd, J2NEndM)
	if d.ReturnsValue {
		a.IReturn()
	} else {
		a.Return()
	}

	// finally on exceptional exit: stack holds the thrown value.
	handlerPC := a.Offset()
	a.EnterHandler()
	signal(a, J2NEnd, J2NEndM)
	a.Throw()

	flags := (renamed.Flags &^ classfile.AccNative) | classfile.AccSynthetic
	wrapper, err := a.FinishMethod(origName, renamed.Desc, flags, argWords,
		[]classfile.ExceptionEntry{{StartPC: tryStart, EndPC: tryEnd, HandlerPC: handlerPC}})
	if err != nil {
		return nil, err
	}
	return wrapper, nil
}

// Classes instruments a set of classes in place of a class path, returning
// rewritten copies and aggregate statistics.
func Classes(classes []*classfile.Class, cfg Config) ([]*classfile.Class, Stats, error) {
	cfg = cfg.withDefaults()
	var out []*classfile.Class
	var st Stats
	for _, c := range classes {
		st.ClassesScanned++
		rewritten, wrapped, err := Class(c, cfg)
		if err != nil {
			return nil, st, err
		}
		if wrapped > 0 {
			st.ClassesChanged++
			st.MethodsWrapped += wrapped
		} else if rewritten == c && (c.Name == cfg.RuntimeClass || alreadyInstrumented(c, cfg.Prefix)) {
			st.Skipped++
		}
		out = append(out, rewritten)
	}
	return out, st, nil
}

// Archive reads a class archive from r, instruments it, and writes the
// rewritten archive to w — the workflow the paper applies to rt.jar before
// loading it via -Xbootclasspath/p:.
func Archive(r io.Reader, w io.Writer, cfg Config) (Stats, error) {
	classes, err := classfile.ReadArchive(r)
	if err != nil {
		return Stats{}, err
	}
	rewritten, st, err := Classes(classes, cfg)
	if err != nil {
		return st, err
	}
	if err := classfile.WriteArchive(w, rewritten); err != nil {
		return st, err
	}
	return st, nil
}

// RuntimeClassDef returns the definition of the IPA runtime support class:
// a class declaring the four transition-signal methods as static native
// methods (Section IV: "we created a Java class corresponding to IPA which
// declares the four corresponding static methods as native"). N2J signals
// are invoked from the C-side JNI wrappers in the real system; they are
// declared here for completeness and for the mixed-call-chain extension.
func RuntimeClassDef(cfg Config) *classfile.Class {
	cfg = cfg.withDefaults()
	natFlags := classfile.AccPublic | classfile.AccStatic | classfile.AccNative
	return &classfile.Class{
		Name:       cfg.RuntimeClass,
		SourceFile: "Runtime.java",
		Methods: []*classfile.Method{
			{Name: J2NBegin, Desc: "()V", Flags: natFlags},
			{Name: J2NEnd, Desc: "()V", Flags: natFlags},
			{Name: J2NBeginM, Desc: "(J)V", Flags: natFlags},
			{Name: J2NEndM, Desc: "(J)V", Flags: natFlags},
			{Name: "N2J_Begin", Desc: "()V", Flags: natFlags},
			{Name: "N2J_End", Desc: "()V", Flags: natFlags},
		},
	}
}

// LoadHook returns a JVMTI ClassFileLoadHook implementing dynamic (load-
// time) instrumentation, the alternative deployment mode of Section IV.
// The returned function signature matches jvmti.Callbacks.ClassFileLoadHook
// modulo the env parameter, which the caller binds.
func LoadHook(cfg Config) func(c *classfile.Class) *classfile.Class {
	cfg = cfg.withDefaults()
	return func(c *classfile.Class) *classfile.Class {
		rewritten, wrapped, err := Class(c, cfg)
		if err != nil || wrapped == 0 {
			return nil
		}
		return rewritten
	}
}
