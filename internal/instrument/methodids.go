package instrument

import (
	"sort"
	"sync"
)

// Method-identified transition signals. When a Registry is configured, the
// generated wrappers call these variants with the wrapped method's numeric
// id, enabling per-native-method time attribution in the agent — the
// refinement of Figure 2 that answers "which native method costs the
// time", not just "how much time is native".
const (
	J2NBeginM = "J2N_BeginM"
	J2NEndM   = "J2N_EndM"
)

// Registry assigns stable numeric ids to fully qualified native method
// names ("Class.name(Desc)") at instrumentation time and resolves them
// back at reporting time. It is safe for concurrent use.
//
// Registries are per-agent, never global: each IPA agent owns one, so
// two agents instrumenting the same classes on different goroutines (the
// parallel runner's cells) assign ids independently and deterministically
// from their own instrumentation order.
type Registry struct {
	mu    sync.RWMutex
	ids   map[string]int64
	names []string
}

// NewRegistry returns an empty method-id registry.
func NewRegistry() *Registry {
	return &Registry{ids: make(map[string]int64)}
}

// IDFor returns the id for the given fully qualified method name,
// assigning the next id on first use. IDs start at 1; 0 is reserved for
// "unknown".
func (r *Registry) IDFor(fullName string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if id, ok := r.ids[fullName]; ok {
		return id
	}
	r.names = append(r.names, fullName)
	id := int64(len(r.names))
	r.ids[fullName] = id
	return id
}

// Name resolves an id back to the method name, or "" for unknown ids.
func (r *Registry) Name(id int64) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if id < 1 || int(id) > len(r.names) {
		return ""
	}
	return r.names[id-1]
}

// Len returns the number of registered methods.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.names)
}

// Names returns all registered names in id order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.names...)
	return out
}

// SortedNames returns the names sorted lexicographically (for stable
// report output independent of registration order).
func (r *Registry) SortedNames() []string {
	out := r.Names()
	sort.Strings(out)
	return out
}
