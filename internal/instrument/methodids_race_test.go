package instrument

import (
	"fmt"
	"sync"
	"testing"
)

// TestRegistryConcurrentUse exercises the method-id registry from many
// goroutines at once — the access pattern of parallel measurement cells
// whose wrappers assign ids while reports resolve them. Run under
// -race, this is the regression test for the registry's thread safety.
func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				name := fmt.Sprintf("C.m%d(J)J", i)
				id := r.IDFor(name)
				if got := r.Name(id); got != name {
					t.Errorf("Name(IDFor(%q)) = %q", name, got)
					return
				}
				_ = r.Len()
				_ = r.SortedNames()
			}
		}()
	}
	wg.Wait()
	if r.Len() != perWorker {
		t.Fatalf("Len = %d, want %d (ids must be stable across goroutines)", r.Len(), perWorker)
	}
	// Every name resolves to exactly one id regardless of which
	// goroutine registered it first.
	seen := map[int64]bool{}
	for i := 0; i < perWorker; i++ {
		id := r.IDFor(fmt.Sprintf("C.m%d(J)J", i))
		if seen[id] {
			t.Fatalf("id %d assigned twice", id)
		}
		seen[id] = true
	}
}

// TestRegistriesAreIndependent: two registries (two agents in two
// parallel cells) assign ids from their own instrumentation order and
// never observe each other.
func TestRegistriesAreIndependent(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	idA := a.IDFor("X.f()V")
	b.IDFor("Y.g()V")
	idB := b.IDFor("X.f()V")
	if idA != 1 || idB != 2 {
		t.Fatalf("ids = %d, %d; registries leaked state", idA, idB)
	}
	if a.Len() != 1 || b.Len() != 2 {
		t.Fatalf("lens = %d, %d", a.Len(), b.Len())
	}
}
