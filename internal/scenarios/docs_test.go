package scenarios

import (
	"fmt"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workloads"
)

// minimalPhase returns a minimal valid JSON phase object for each kind —
// the representative the documentation round-trip drives through the
// parser.
func minimalPhase(kind string) string {
	switch kind {
	case workloads.PhaseBytecode:
		return `{"kind": "bytecode", "calls": 2, "work": 3}`
	case workloads.PhaseArray:
		return `{"kind": "array", "work": 4}`
	case workloads.PhaseNative:
		return `{"kind": "native", "calls": 1, "work": 5, "jniEvery": 2, "callbacksPerNative": 1, "callbackWork": 2}`
	case workloads.PhaseAlloc:
		return `{"kind": "alloc", "calls": 1, "work": 2, "size": 8}`
	case workloads.PhaseDeepChain:
		return `{"kind": "deepchain", "calls": 1, "work": 2, "depth": 3}`
	case workloads.PhaseException:
		return `{"kind": "exception", "calls": 1, "depth": 2}`
	case workloads.PhaseContend:
		return `{"kind": "contend", "calls": 1, "work": 2}`
	case workloads.PhaseRetain:
		return `{"kind": "retain", "calls": 1, "work": 4, "size": 8, "depth": 2}`
	}
	return ""
}

// TestScenarioFormatDocCoversEveryPhaseKind keeps docs/scenario-format.md
// honest: every phase kind the engine accepts is documented there, every
// kind documented round-trips through the parser unchanged, and the
// documented heap/checks fields parse. A new phase kind fails this test
// until the reference gains a row for it.
func TestScenarioFormatDocCoversEveryPhaseKind(t *testing.T) {
	doc, err := os.ReadFile("../../docs/scenario-format.md")
	if err != nil {
		t.Fatalf("the scenario format reference must exist: %v", err)
	}
	text := string(doc)

	for i, kind := range workloads.PhaseKinds() {
		t.Run(kind, func(t *testing.T) {
			if !strings.Contains(text, "`"+kind+"`") {
				t.Fatalf("docs/scenario-format.md does not document phase kind %q", kind)
			}
			phase := minimalPhase(kind)
			if phase == "" {
				t.Fatalf("no minimal phase for kind %q — extend the doc round-trip", kind)
			}
			src := fmt.Sprintf(`{
  "scenarios": [
    {
      "name": "doc-%s",
      "outerIters": 10,
      "phases": [%s],
      "heap": {"nurseryWords": 1024, "tenuredWords": 4096, "tenureAge": 2},
      "checks": {"maxNativePct": 50, "minMinorGCs": 1}
    }
  ]
}`, kind, phase)
			parsed, err := ParseBytes([]byte(src))
			if err != nil {
				t.Fatalf("documented kind %q does not parse: %v", kind, err)
			}
			if len(parsed) != 1 || parsed[0].Workload.Phases[0].Kind != kind {
				t.Fatalf("parse produced %+v", parsed)
			}
			// Round trip: marshal back to the file form and re-parse; the
			// scenario must survive unchanged, proving every documented
			// parameter has a faithful serialization.
			data, err := Marshal(parsed)
			if err != nil {
				t.Fatal(err)
			}
			again, err := ParseBytes(data)
			if err != nil {
				t.Fatalf("marshalled form does not re-parse: %v\n%s", err, data)
			}
			if !reflect.DeepEqual(parsed, again) {
				t.Fatalf("round trip changed the scenario:\nfirst:  %+v\nsecond: %+v", parsed[0], again[0])
			}
			if again[0].Heap == nil || again[0].Heap.NurseryWords != 1024 {
				t.Fatalf("heap spec lost in round trip: %+v", again[0].Heap)
			}
			if again[0].Checks.MinMinorGCs != 1 {
				t.Fatalf("GC check lost in round trip: %+v", again[0].Checks)
			}
			_ = i
		})
	}

	// The parameter names themselves must appear in the reference.
	for _, param := range []string{"calls", "work", "size", "depth",
		"jniEvery", "callbacksPerNative", "callbackWork",
		"nurseryWords", "tenuredWords", "tenureAge",
		"minMinorGCs", "minMajorGCs"} {
		if !strings.Contains(text, "`"+param+"`") {
			t.Errorf("docs/scenario-format.md does not document parameter %q", param)
		}
	}
}
