package scenarios

import (
	"reflect"
	"testing"

	"repro/internal/agents/ipa"
	"repro/internal/agents/spa"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestNewFamiliesFastLoopDifferential extends the dual-dispatch-loop
// guarantee to every non-paper scenario family: each workload, run
// uninstrumented and under SPA and IPA, produces identical results,
// cycles, instruction counts, ground truth and agent reports on the fast
// loop and the fully instrumented loop. The new phase kinds (alloc,
// deepchain, exception, contend) exercise interpreter paths — throw
// unwinding, deep frames, static-field traffic — the paper suite never
// reaches.
func TestNewFamiliesFastLoopDifferential(t *testing.T) {
	agents := map[string]func() core.Agent{
		"none": func() core.Agent { return nil },
		"SPA":  func() core.Agent { return spa.New() },
		"IPA":  func() core.Agent { return ipa.New() },
	}
	for _, name := range Names() {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		if sc.Family == "paper" {
			continue // covered by the harness differential test
		}
		w := sc.Workload.Scale(10)
		for agentName, mk := range agents {
			t.Run(name+"/"+agentName, func(t *testing.T) {
				run := func(force bool) *core.RunResult {
					prog, err := workloads.BuildWorkload(w)
					if err != nil {
						t.Fatal(err)
					}
					opts := vm.DefaultOptions()
					opts.ForceInstrumentedLoop = force
					res, err := core.Run(prog, mk(), opts)
					if err != nil {
						t.Fatal(err)
					}
					return res
				}
				fast := run(false)
				slow := run(true)
				if rep := difftest.Diff(name, "fast", "instrumented",
					difftest.FromRun(fast, nil), difftest.FromRun(slow, nil)); rep.Diverged() {
					t.Error(rep)
				}
				// Obs summarizes the report; the per-thread rows must also
				// match exactly.
				if !reflect.DeepEqual(fast.Report, slow.Report) {
					t.Errorf("agent report diverged:\nfast: %+v\ninstrumented: %+v", fast.Report, slow.Report)
				}
			})
		}
	}
}
