package scenarios

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Pins are a scenario's exact expected observables, recorded from one
// canonical run (interpreter engine, default options, the scenario's
// own heap spec) at a declared scale. Unlike Checks — tolerance bounds
// a human writes — pins are machine-recorded byte-exact values: the
// trace compiler and the adversarial search stamp them onto every
// scenario they emit, turning a found workload into a regression test
// that any later engine change must still reproduce bit for bit.
type Pins struct {
	// Scale is the workload scale divisor the pins were recorded at.
	Scale int `json:"scale"`
	// MainResult is the program's main return value.
	MainResult int64 `json:"mainResult"`
	// TotalCycles and Instructions are the engine's execution metrics.
	TotalCycles  uint64 `json:"totalCycles"`
	Instructions uint64 `json:"instructions"`
	// Threads is the number of threads the run created.
	Threads int `json:"threads"`
	// The ground-truth attribution (core.GroundTruth), field by field.
	BytecodeCycles    uint64 `json:"bytecodeCycles"`
	NativeCycles      uint64 `json:"nativeCycles"`
	OverheadCycles    uint64 `json:"overheadCycles,omitempty"`
	GCCycles          uint64 `json:"gcCycles,omitempty"`
	NativeMethodCalls uint64 `json:"nativeMethodCalls,omitempty"`
	JNICalls          uint64 `json:"jniCalls,omitempty"`
}

// Validate checks the pins for registrability.
func (p *Pins) Validate() error {
	if p.Scale < 1 {
		return fmt.Errorf("scenarios: pins need scale >= 1 (got %d)", p.Scale)
	}
	return nil
}

// Truth returns the pinned ground truth as the core type.
func (p *Pins) Truth() core.GroundTruth {
	return core.GroundTruth{
		BytecodeCycles:    p.BytecodeCycles,
		NativeCycles:      p.NativeCycles,
		OverheadCycles:    p.OverheadCycles,
		GCCycles:          p.GCCycles,
		NativeMethodCalls: p.NativeMethodCalls,
		JNICalls:          p.JNICalls,
	}
}

// Check compares a run result against the pinned values, reporting
// every mismatched field.
func (p *Pins) Check(res *core.RunResult) error {
	var bad []string
	mism := func(name string, got, want any) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s: got %v, pinned %v", name, got, want))
		}
	}
	mism("mainResult", res.MainResult, p.MainResult)
	mism("totalCycles", res.TotalCycles, p.TotalCycles)
	mism("instructions", res.Instructions, p.Instructions)
	mism("threads", res.Threads, p.Threads)
	mism("groundTruth", res.Truth, p.Truth())
	if len(bad) > 0 {
		return fmt.Errorf("pinned observables diverged:\n  %s", strings.Join(bad, "\n  "))
	}
	return nil
}

// CanonicalOptions are the VM options pins are recorded and verified
// under: the interpreter engine with default options — the reference
// semantics every other engine's byte-identity contract points back to.
func CanonicalOptions() vm.Options {
	return vm.DefaultOptions()
}

// CanonicalRun executes the scenario's workload once under the
// canonical options (applying the scenario's heap spec) at the given
// scale — the run pins are recorded from and replayed against.
func (s Scenario) CanonicalRun(scale int) (*core.RunResult, error) {
	prog, err := workloads.BuildWorkload(s.Workload.Scale(scale))
	if err != nil {
		return nil, err
	}
	opts := CanonicalOptions()
	s.ApplyHeap(&opts)
	return core.Run(prog, nil, opts)
}

// RecordPins runs the scenario canonically at the given scale and
// stamps the observed values as its pins.
func (s *Scenario) RecordPins(scale int) error {
	if scale < 1 {
		scale = 1
	}
	res, err := s.CanonicalRun(scale)
	if err != nil {
		return fmt.Errorf("scenarios: recording pins for %s: %w", s.Name(), err)
	}
	s.Pins = &Pins{
		Scale:             scale,
		MainResult:        res.MainResult,
		TotalCycles:       res.TotalCycles,
		Instructions:      res.Instructions,
		Threads:           res.Threads,
		BytecodeCycles:    res.Truth.BytecodeCycles,
		NativeCycles:      res.Truth.NativeCycles,
		OverheadCycles:    res.Truth.OverheadCycles,
		GCCycles:          res.Truth.GCCycles,
		NativeMethodCalls: res.Truth.NativeMethodCalls,
		JNICalls:          res.Truth.JNICalls,
	}
	return nil
}

// VerifyPins re-runs the scenario canonically and checks the result
// against its pins; a scenario without pins passes vacuously.
func (s Scenario) VerifyPins() error {
	if s.Pins == nil {
		return nil
	}
	res, err := s.CanonicalRun(s.Pins.Scale)
	if err != nil {
		return fmt.Errorf("scenarios: %s: %w", s.Name(), err)
	}
	if err := s.Pins.Check(res); err != nil {
		return fmt.Errorf("scenarios: %s: %w", s.Name(), err)
	}
	return nil
}
