package scenarios

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

// TestPaperProfileMirrorsSuite: the paper profile must expose the eight
// calibrated suite benchmarks, in suite order, with their paper numbers.
func TestPaperProfileMirrorsSuite(t *testing.T) {
	paper, err := Profile("paper")
	if err != nil {
		t.Fatal(err)
	}
	suite := workloads.Suite()
	if len(paper) != len(suite) {
		t.Fatalf("paper profile has %d scenarios, suite %d", len(paper), len(suite))
	}
	for i, sc := range paper {
		if sc.Name() != suite[i].Spec.Name {
			t.Errorf("position %d: scenario %q, suite %q", i, sc.Name(), suite[i].Spec.Name)
		}
		if sc.Expected != suite[i].Expected {
			t.Errorf("%s: expected values diverge from the suite", sc.Name())
		}
	}
}

func TestBuiltinFamilies(t *testing.T) {
	fams := Families()
	for _, want := range []string{"paper", "gc-heavy", "exception-heavy", "deep-chains", "contended"} {
		found := false
		for _, f := range fams {
			if f == want {
				found = true
			}
		}
		if !found {
			t.Errorf("family %q missing (have %v)", want, fams)
		}
		group, err := Profile(want)
		if err != nil {
			t.Errorf("Profile(%q): %v", want, err)
		} else if len(group) < 2 && want != "paper" {
			t.Errorf("family %q has only %d scenarios", want, len(group))
		}
	}
}

// TestBuiltinsBuildable: every registered scenario must generate a valid
// program, including its warehouse-sequence variants.
func TestBuiltinsBuildable(t *testing.T) {
	for _, name := range Names() {
		sc, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		threadCounts := sc.WarehouseSequence
		if len(threadCounts) == 0 {
			threadCounts = []int{sc.Workload.Threads}
		}
		for _, threads := range threadCounts {
			w := sc.Workload.Scale(50)
			w.Threads = threads
			if _, err := workloads.BuildWorkload(w); err != nil {
				t.Errorf("%s (threads=%d): %v", name, threads, err)
			}
		}
	}
}

func TestGetUnknown(t *testing.T) {
	_, err := Get("definitely-not-registered")
	if err == nil || !strings.Contains(err.Error(), "unknown scenario") {
		t.Fatalf("err = %v", err)
	}
}

func TestProfileAllAndResolve(t *testing.T) {
	all, err := Profile("all")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != len(Names()) {
		t.Fatalf("all = %d scenarios, registry has %d", len(all), len(Names()))
	}
	// Mixed resolution: a scenario name, a family, and "all".
	got, err := Resolve([]string{"compress", "gc-heavy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Name() != "compress" {
		t.Fatalf("Resolve mixed = %v", names(got))
	}
	if _, err := Resolve([]string{"no-such-thing"}); err == nil {
		t.Fatal("Resolve(no-such-thing) succeeded")
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	w := workloads.Workload{Name: "compress", ClassName: "t/C", OuterIters: 1,
		Phases: []workloads.Phase{{Kind: workloads.PhaseBytecode}}}
	if err := Register(Scenario{Family: "custom", Workload: w}); err == nil {
		t.Fatal("duplicate name registered")
	}
	w.Name = "broken-checks"
	err := Register(Scenario{Family: "custom", Workload: w,
		Checks: Checks{MinNativePct: 50, MaxNativePct: 10}})
	if err == nil || !strings.Contains(err.Error(), "minNativePct") {
		t.Fatalf("inconsistent checks registered: %v", err)
	}
	if err := Register(Scenario{Workload: w}); err == nil {
		t.Fatal("empty family registered")
	}
}

func names(scs []Scenario) []string {
	out := make([]string, len(scs))
	for i, s := range scs {
		out[i] = s.Name()
	}
	return out
}
