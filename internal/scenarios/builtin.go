package scenarios

import "repro/internal/workloads"

// The built-in catalogue. The paper profile mirrors workloads.Suite()
// benchmark for benchmark; the synthetic families exercise the phase
// vocabulary the paper's fixed suite never reaches: allocation churn,
// exception unwinding, deep recursive chains and cross-thread contention.
func init() {
	registerPaper()
	registerGCHeavy()
	registerGCPressure()
	registerExceptionHeavy()
	registerDeepChains()
	registerContended()
	registerTierSensitive()
}

// registerPaper registers the eight Section V benchmarks as the "paper"
// profile. The workloads come straight from the calibrated suite, so the
// registry path generates byte-identical programs to the pre-registry
// harness.
func registerPaper() {
	for _, b := range workloads.Suite() {
		mustRegister(Scenario{
			Family:            "paper",
			Workload:          b.Spec.Workload(),
			WarehouseSequence: b.WarehouseSequence,
			Expected:          b.Expected,
			Checks: Checks{
				MaxNativePct:      35,
				MaxIPAOverheadPct: 60,
			},
		})
	}
}

// registerGCHeavy: allocation-burst workloads. Almost everything is
// bytecode-side heap churn, so the native share must stay negligible and
// IPA — which only pays at transitions — must be nearly free.
func registerGCHeavy() {
	mustRegister(Scenario{
		Family: "gc-heavy",
		Workload: workloads.Workload{
			Name: "gc-churn", ClassName: "scn/gc/Churn", OuterIters: 2500,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseBytecode, Calls: 8, Work: 4},
				{Kind: workloads.PhaseAlloc, Calls: 4, Work: 12, Size: 32},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
	mustRegister(Scenario{
		Family: "gc-heavy",
		Workload: workloads.Workload{
			Name: "gc-arrays", ClassName: "scn/gc/Arrays", OuterIters: 1200,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseAlloc, Calls: 6, Work: 20, Size: 128},
				{Kind: workloads.PhaseArray, Work: 64},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
}

// registerGCPressure: workloads shaped around the generational heap's
// collection machinery, each with a HeapSpec that bounds the nursery so
// collections actually run (the gc-heavy family above measures pure
// allocation throughput and stays in legacy mode). The collection-count
// minimums are declared at full calibrated size and scale down with the
// campaign's -scale like the transition-count checks.
func registerGCPressure() {
	mustRegister(Scenario{
		Family: "gcpressure",
		Workload: workloads.Workload{
			Name: "gc-nursery-thrash", ClassName: "scn/gcp/Thrash", OuterIters: 1600,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseBytecode, Calls: 4, Work: 4},
				{Kind: workloads.PhaseAlloc, Calls: 6, Work: 16, Size: 16},
			},
		},
		// Nursery far below the per-iteration burst: minor collections
		// fire several times per iteration, and since the burst arrays
		// die immediately, almost nothing survives or tenures.
		Heap:   &HeapSpec{NurseryWords: 2048},
		Checks: Checks{MaxNativePct: 1, MinMinorGCs: 1000},
	})
	mustRegister(Scenario{
		Family: "gcpressure",
		Workload: workloads.Workload{
			Name: "gc-tenure-heavy", ClassName: "scn/gcp/Tenure", OuterIters: 500,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseRetain, Calls: 2, Work: 48, Size: 32, Depth: 8},
				{Kind: workloads.PhaseBytecode, Calls: 2, Work: 6},
			},
		},
		// The retain kernel keeps a rotating window of arrays live across
		// minor collections: survivors age, tenure at 2 survivals, fill
		// the bounded tenured space and force major collections.
		Heap:   &HeapSpec{NurseryWords: 1024, TenuredWords: 512},
		Checks: Checks{MaxNativePct: 1, MinMinorGCs: 500, MinMajorGCs: 8},
	})
	mustRegister(Scenario{
		Family: "gcpressure",
		Workload: workloads.Workload{
			Name: "gc-frag-churn", ClassName: "scn/gcp/Frag", OuterIters: 400,
			Threads: 4, OpsPerIter: 2,
			Phases: []workloads.Phase{
				// Interleaved small and large allocations with a retained
				// window — the fragmentation-like churn shape: mixed
				// lifetimes and sizes hitting the same nursery.
				{Kind: workloads.PhaseAlloc, Calls: 4, Work: 10, Size: 8},
				{Kind: workloads.PhaseRetain, Calls: 1, Work: 8, Size: 96, Depth: 4},
				{Kind: workloads.PhaseAlloc, Calls: 2, Work: 3, Size: 128},
				{Kind: workloads.PhaseArray, Work: 48},
			},
		},
		// Four workers churn one shared nursery: collections triggered by
		// any thread scan the parked threads' frames at their recorded
		// canonical depths — the cross-thread root-scan path.
		Heap:   &HeapSpec{NurseryWords: 3072, TenuredWords: 16384},
		Checks: Checks{MaxNativePct: 5, MinThreads: 4, MinMinorGCs: 400},
	})
}

// registerExceptionHeavy: throw/catch/unwind workloads — every iteration
// raises exceptions that unwind real frames into catch-all handlers.
func registerExceptionHeavy() {
	mustRegister(Scenario{
		Family: "exception-heavy",
		Workload: workloads.Workload{
			Name: "exc-storm", ClassName: "scn/exc/Storm", OuterIters: 2000,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseBytecode, Calls: 4, Work: 3},
				{Kind: workloads.PhaseException, Calls: 6, Depth: 4},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
	mustRegister(Scenario{
		Family: "exception-heavy",
		Workload: workloads.Workload{
			Name: "exc-deep-unwind", ClassName: "scn/exc/DeepUnwind", OuterIters: 800,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseException, Calls: 3, Depth: 48, Work: 8},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
}

// registerDeepChains: recursive call-chain workloads — extreme call
// density over deep stacks, the shape where per-event profilers melt down.
func registerDeepChains() {
	mustRegister(Scenario{
		Family: "deep-chains",
		Workload: workloads.Workload{
			Name: "chain-dense", ClassName: "scn/chain/Dense", OuterIters: 1200,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseDeepChain, Calls: 8, Depth: 12, Work: 2},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
	mustRegister(Scenario{
		Family: "deep-chains",
		Workload: workloads.Workload{
			Name: "chain-abyss", ClassName: "scn/chain/Abyss", OuterIters: 300,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseDeepChain, Calls: 2, Depth: 400, Work: 16},
				{Kind: workloads.PhaseBytecode, Calls: 4, Work: 6},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
}

// registerTierSensitive: workloads shaped around the execution tier's
// promotion and deoptimization boundaries (internal/jit). Under
// -engine=interp they are ordinary mixed workloads; under jit/auto they
// drive the pipeline through its edges — kernels crossing the compile
// threshold mid-run, hot/cold call-count splits, exception unwinds
// through compiled frames, and quantum boundaries landing inside
// compiled blocks on contended multi-thread runs. The campaign's
// cross-engine differential suite runs every family, so each scenario
// here doubles as a regression trap for tier-introduced divergence.
func registerTierSensitive() {
	mustRegister(Scenario{
		Family: "tier-sensitive",
		Workload: workloads.Workload{
			Name: "tier-hotcold", ClassName: "scn/tier/HotCold", OuterIters: 1500,
			Phases: []workloads.Phase{
				// The first kernel runs 12× as often as the second: one
				// promotes almost immediately, the other much later, so
				// interpreted and compiled frames coexist all run long.
				{Kind: workloads.PhaseBytecode, Calls: 12, Work: 16},
				{Kind: workloads.PhaseBytecode, Calls: 1, Work: 64},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
	mustRegister(Scenario{
		Family: "tier-sensitive",
		Workload: workloads.Workload{
			Name: "tier-warmup", ClassName: "scn/tier/Warmup", OuterIters: 400,
			Phases: []workloads.Phase{
				// One call per iteration: the kernel crosses the default
				// compile threshold mid-loop, with the driver loop itself
				// still interpreted — the steady-state/warmup split the
				// paper's tiered JVMs exhibit.
				{Kind: workloads.PhaseBytecode, Calls: 1, Work: 48},
				{Kind: workloads.PhaseArray, Work: 48},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
	mustRegister(Scenario{
		Family: "tier-sensitive",
		Workload: workloads.Workload{
			Name: "tier-deopt-unwind", ClassName: "scn/tier/Unwind", OuterIters: 600,
			Phases: []workloads.Phase{
				// Compiled recursive frames stacked deep, then exceptions
				// unwinding straight through them into handlers.
				{Kind: workloads.PhaseDeepChain, Calls: 2, Depth: 24, Work: 6},
				{Kind: workloads.PhaseException, Calls: 4, Depth: 6, Work: 4},
			},
		},
		Checks: Checks{MaxNativePct: 1, MaxIPAOverheadPct: 5},
	})
	mustRegister(Scenario{
		Family: "tier-sensitive",
		Workload: workloads.Workload{
			Name: "tier-quantum", ClassName: "scn/tier/Quantum", OuterIters: 700,
			Threads: 4, OpsPerIter: 2,
			Phases: []workloads.Phase{
				// Four threads hammering a shared static: scheduler quantum
				// boundaries land inside compiled blocks, forcing the
				// executor's per-instruction fallback — and the resulting
				// interleaving must match the interpreter's exactly.
				{Kind: workloads.PhaseContend, Calls: 3, Work: 20},
				{Kind: workloads.PhaseBytecode, Calls: 3, Work: 12},
			},
		},
		Checks: Checks{MaxNativePct: 5, MinThreads: 4},
	})
}

// registerContended: multi-thread workloads hammering one shared static
// field, with and without a native phase in the mix.
func registerContended() {
	mustRegister(Scenario{
		Family: "contended",
		Workload: workloads.Workload{
			Name: "contend-4", ClassName: "scn/contend/Four", OuterIters: 900,
			Threads: 4, OpsPerIter: 4,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseContend, Calls: 4, Work: 24},
				{Kind: workloads.PhaseBytecode, Calls: 4, Work: 4},
			},
		},
		Checks: Checks{MaxNativePct: 5, MinThreads: 4},
	})
	mustRegister(Scenario{
		Family: "contended",
		Workload: workloads.Workload{
			Name: "contend-8-native", ClassName: "scn/contend/EightNative", OuterIters: 400,
			Threads: 8, OpsPerIter: 2,
			Phases: []workloads.Phase{
				{Kind: workloads.PhaseContend, Calls: 2, Work: 16},
				{Kind: workloads.PhaseNative, Calls: 2, Work: 30, JNIEvery: 8, CallbackWork: 6},
			},
		},
		Checks: Checks{MaxNativePct: 30, MinThreads: 8, MinNativeCalls: 16, MinJNICalls: 8},
	})
}
