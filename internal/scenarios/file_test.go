package scenarios

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/workloads"
)

const sampleFile = `{
  "scenarios": [
    {
      "name": "parse-mixed",
      "family": "parse-test",
      "outerIters": 500,
      "threads": 2,
      "opsPerIter": 3,
      "phases": [
        {"kind": "bytecode", "calls": 6, "work": 4},
        {"kind": "native", "calls": 2, "work": 25, "jniEvery": 5, "callbackWork": 3},
        {"kind": "alloc", "calls": 1, "work": 8, "size": 64}
      ],
      "checks": {"maxNativePct": 40, "minNativeCalls": 4}
    },
    {
      "name": "parse-plain",
      "outerIters": 100,
      "phases": [{"kind": "exception", "calls": 2, "depth": 5}]
    }
  ]
}`

func TestParseScenarioFile(t *testing.T) {
	scns, err := ParseBytes([]byte(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) != 2 {
		t.Fatalf("parsed %d scenarios", len(scns))
	}
	first := scns[0]
	if first.Name() != "parse-mixed" || first.Family != "parse-test" {
		t.Fatalf("first = %+v", first)
	}
	if len(first.Workload.Phases) != 3 || first.Workload.Phases[1].JNIEvery != 5 {
		t.Fatalf("phases = %+v", first.Workload.Phases)
	}
	if first.Checks.MaxNativePct != 40 || first.Checks.MinNativeCalls != 4 {
		t.Fatalf("checks = %+v", first.Checks)
	}
	// Defaults: family "custom", class name derived from the scenario name.
	second := scns[1]
	if second.Family != "custom" {
		t.Fatalf("default family = %q", second.Family)
	}
	if second.Workload.ClassName != "scenario/parse_plain" {
		t.Fatalf("derived class name = %q", second.Workload.ClassName)
	}
	// Parsed scenarios must be buildable as-is.
	for _, sc := range scns {
		if _, err := workloads.BuildWorkload(sc.Workload); err != nil {
			t.Errorf("%s: %v", sc.Name(), err)
		}
	}
}

// TestScenarioFileRoundTrip: Marshal is the inverse of Parse — a parsed
// file re-marshalled and re-parsed yields identical scenarios.
func TestScenarioFileRoundTrip(t *testing.T) {
	scns, err := ParseBytes([]byte(sampleFile))
	if err != nil {
		t.Fatal(err)
	}
	data, err := Marshal(scns)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ParseBytes(data)
	if err != nil {
		t.Fatalf("re-parsing marshalled file: %v\n%s", err, data)
	}
	if !reflect.DeepEqual(scns, again) {
		t.Fatalf("round trip diverged:\nfirst:  %+v\nsecond: %+v", scns, again)
	}
}

func TestParseRejectsUnknownPhase(t *testing.T) {
	_, err := ParseBytes([]byte(`{"scenarios":[{"name":"x","outerIters":10,
		"phases":[{"kind":"quantum-loop"}]}]}`))
	if err == nil || !strings.Contains(err.Error(), "unknown phase kind") {
		t.Fatalf("err = %v", err)
	}
	// The error names the offending scenario.
	if !strings.Contains(err.Error(), `"x"`) {
		t.Fatalf("error %v does not name the scenario", err)
	}
}

func TestParseRejectsInvalidParameter(t *testing.T) {
	cases := map[string]string{
		"calls out of range": `{"scenarios":[{"name":"x","outerIters":10,
			"phases":[{"kind":"bytecode","calls":999}]}]}`,
		"negative work": `{"scenarios":[{"name":"x","outerIters":10,
			"phases":[{"kind":"bytecode","work":-3}]}]}`,
		"zero iterations": `{"scenarios":[{"name":"x","outerIters":0,
			"phases":[{"kind":"bytecode"}]}]}`,
		"depth out of range": `{"scenarios":[{"name":"x","outerIters":5,
			"phases":[{"kind":"deepchain","depth":1000}]}]}`,
		"inconsistent checks": `{"scenarios":[{"name":"x","outerIters":5,
			"phases":[{"kind":"bytecode"}],"checks":{"minNativePct":9,"maxNativePct":1}}]}`,
		"bad warehouse count": `{"scenarios":[{"name":"x","outerIters":5,
			"phases":[{"kind":"bytecode"}],"warehouseSequence":[0]}]}`,
		"parameter unused by the kind": `{"scenarios":[{"name":"x","outerIters":5,
			"phases":[{"kind":"array","size":64}]}]}`,
	}
	for label, doc := range cases {
		if _, err := ParseBytes([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestParseRejectsUnknownField(t *testing.T) {
	_, err := ParseBytes([]byte(`{"scenarios":[{"name":"x","outerIters":10,
		"phases":[{"kind":"bytecode","clals":3}]}]}`))
	if err == nil || !strings.Contains(err.Error(), "clals") {
		t.Fatalf("misspelled field accepted: %v", err)
	}
}

func TestParseRejectsTrailingContent(t *testing.T) {
	doc := `{"scenarios":[{"name":"x","outerIters":5,"phases":[{"kind":"bytecode"}]}]}`
	if _, err := ParseBytes([]byte(doc + doc)); err == nil ||
		!strings.Contains(err.Error(), "trailing content") {
		t.Fatal("duplicated document accepted; later scenarios would be dropped silently")
	}
}

func TestParseRejectsEmptyAndDuplicates(t *testing.T) {
	if _, err := ParseBytes([]byte(`{"scenarios":[]}`)); err == nil {
		t.Fatal("empty scenario list accepted")
	}
	if _, err := ParseBytes([]byte(`{"scenarios":[
		{"name":"dup","outerIters":5,"phases":[{"kind":"bytecode"}]},
		{"name":"dup","outerIters":5,"phases":[{"kind":"bytecode"}]}]}`)); err == nil {
		t.Fatal("duplicate names accepted")
	}
}

func TestLoadFileRegisters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "scn.json")
	doc := `{"scenarios":[{"name":"loadfile-unique-name","outerIters":20,
		"phases":[{"kind":"contend","calls":1,"work":4}]}]}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	scns, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(scns) != 1 {
		t.Fatalf("loaded %d scenarios", len(scns))
	}
	got, err := Get("loadfile-unique-name")
	if err != nil {
		t.Fatal(err)
	}
	if got.Family != "custom" {
		t.Fatalf("family = %q", got.Family)
	}
	// Loading again collides with the registered name.
	if _, err := LoadFile(path); err == nil {
		t.Fatal("second load of the same file succeeded")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
	// A load that fails on a later entry must register nothing: the fresh
	// name declared before the colliding one stays unregistered.
	partial := filepath.Join(dir, "partial.json")
	doc = `{"scenarios":[
		{"name":"atomic-fresh-name","outerIters":5,"phases":[{"kind":"bytecode"}]},
		{"name":"compress","outerIters":5,"phases":[{"kind":"bytecode"}]}]}`
	if err := os.WriteFile(partial, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(partial); err == nil {
		t.Fatal("load colliding with a builtin succeeded")
	}
	if _, err := Get("atomic-fresh-name"); err == nil {
		t.Fatal("failed load left an earlier entry registered")
	}
}
