package scenarios

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/workloads"
)

// AddFlag registers the shared -scenario flag on fs with the project-wide
// help text, so every binary exposes the same scenario-file knob. The
// returned pointer is valid after fs.Parse; pass it to LoadIfSet.
func AddFlag(fs *flag.FlagSet) *string {
	return fs.String("scenario", "",
		"load scenarios from a declarative JSON `file` into the registry")
}

// LoadIfSet registers the scenarios of the -scenario flag value; an empty
// path (flag unset) is a no-op.
func LoadIfSet(path string) error {
	if path == "" {
		return nil
	}
	_, err := LoadFile(path)
	return err
}

// File is the declarative scenario-file format the binaries load with
// -scenario. A file holds any number of scenarios; each is a workload
// (name, iteration count, phase list) plus optional family, warehouse
// sequence and expected-value checks:
//
//	{
//	  "scenarios": [
//	    {
//	      "name": "my-workload",
//	      "family": "custom",
//	      "outerIters": 2000,
//	      "phases": [
//	        {"kind": "bytecode", "calls": 10, "work": 5},
//	        {"kind": "native", "calls": 2, "work": 30, "jniEvery": 10, "callbackWork": 5}
//	      ],
//	      "checks": {"maxNativePct": 25}
//	    }
//	  ]
//	}
//
// Unknown fields (including misspelled phase parameters) are rejected, and
// every workload is validated phase by phase before registration.
type File struct {
	Scenarios []FileScenario `json:"scenarios"`
}

// FileScenario is one scenario entry of a scenario file: the workload
// fields inline plus the registry metadata.
type FileScenario struct {
	workloads.Workload
	Family            string    `json:"family,omitempty"`
	WarehouseSequence []int     `json:"warehouseSequence,omitempty"`
	Checks            Checks    `json:"checks,omitempty"`
	Heap              *HeapSpec `json:"heap,omitempty"`
	Pins              *Pins     `json:"pins,omitempty"`
}

// Scenario converts the file entry to its registry form, defaulting the
// family to "custom" and deriving a class name from the scenario name when
// none is given.
func (f FileScenario) Scenario() Scenario {
	s := Scenario{
		Family:            f.Family,
		Workload:          f.Workload,
		WarehouseSequence: f.WarehouseSequence,
		Checks:            f.Checks,
		Heap:              f.Heap,
		Pins:              f.Pins,
	}
	if s.Family == "" {
		s.Family = "custom"
	}
	if s.Workload.ClassName == "" {
		s.Workload.ClassName = "scenario/" + className(f.Workload.Name)
	}
	return s
}

// className derives a class-name segment from a scenario name: alphanumeric
// runs are kept, everything else becomes an underscore.
func className(name string) string {
	mapped := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, name)
	if mapped == "" {
		mapped = "W"
	}
	return mapped
}

// Parse reads a scenario file and returns its validated scenarios without
// registering them. Unknown JSON fields, unknown phase kinds and invalid
// phase parameters are errors.
func Parse(r io.Reader) ([]Scenario, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("scenarios: parsing scenario file: %w", err)
	}
	// Decode reads exactly one JSON value; trailing content (a duplicated
	// document from a botched merge, say) would otherwise be dropped
	// silently.
	if dec.More() {
		return nil, fmt.Errorf("scenarios: scenario file has trailing content after the document")
	}
	if len(f.Scenarios) == 0 {
		return nil, fmt.Errorf("scenarios: scenario file declares no scenarios")
	}
	out := make([]Scenario, 0, len(f.Scenarios))
	seen := map[string]bool{}
	for i, fs := range f.Scenarios {
		s := fs.Scenario()
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenarios: scenario %d (%q): %w", i, fs.Name, err)
		}
		if seen[s.Name()] {
			return nil, fmt.Errorf("scenarios: scenario file repeats name %q", s.Name())
		}
		seen[s.Name()] = true
		out = append(out, s)
	}
	return out, nil
}

// ParseBytes is Parse over an in-memory document.
func ParseBytes(data []byte) ([]Scenario, error) {
	return Parse(bytes.NewReader(data))
}

// LoadFile parses the scenario file at path and registers every scenario
// atomically, returning them in file order. Names that collide with
// already-registered scenarios are errors, and a failed load registers
// nothing.
func LoadFile(path string) ([]Scenario, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("scenarios: %w", err)
	}
	defer f.Close()
	list, err := Parse(f)
	if err != nil {
		return nil, fmt.Errorf("scenarios: %s: %w", path, err)
	}
	if err := RegisterAll(list); err != nil {
		return nil, fmt.Errorf("scenarios: %s: %w", path, err)
	}
	return list, nil
}

// Marshal renders scenarios back into the file format, the inverse of
// Parse for tooling that generates scenario files.
func Marshal(list []Scenario) ([]byte, error) {
	f := File{Scenarios: make([]FileScenario, len(list))}
	for i, s := range list {
		f.Scenarios[i] = FileScenario{
			Workload:          s.Workload,
			Family:            s.Family,
			WarehouseSequence: s.WarehouseSequence,
			Checks:            s.Checks,
			Heap:              s.Heap,
			Pins:              s.Pins,
		}
	}
	data, err := json.MarshalIndent(&f, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenarios: marshal: %w", err)
	}
	return append(data, '\n'), nil
}
