// Package trace is the record/replay half of the scenario diversity
// engine: it runs a real program (the mini-JDK's ziptool and jdkapp
// applications) under the recording agent, captures its per-method
// self-cycle profile, and compiles that trace into a phase-based
// scenario whose canonical observables are pinned — so "real program"
// shapes enter the registry as ordinary, replayable scenario JSON.
//
// The compilation is deliberately a modelling step, not a transcription:
// the phase vocabulary cannot reproduce an arbitrary call graph, so the
// compiler fits the trace's aggregate shape (java kernel calls, native
// calls, the bytecode/native cycle split, JNI callbacks) onto a
// bytecode + native phase pair and then lets the pinned canonical run
// define exactness from there. Whatever the fit loses, the pins keep
// honest: a compiled scenario replays byte-identically or not at all.
package trace

import (
	"fmt"

	"repro/internal/agents/recorder"
	"repro/internal/core"
	"repro/internal/jdk"
	"repro/internal/scenarios"
	"repro/internal/workloads"
)

// Trace is one recorded run's profile, the compiler's input.
type Trace struct {
	// Program is the recorded program's name.
	Program string `json:"program"`
	// MainResult, TotalCycles and Truth are the recorded run's
	// observables (under the recorder agent, interpreter engine).
	MainResult  int64            `json:"mainResult"`
	TotalCycles uint64           `json:"totalCycles"`
	Truth       core.GroundTruth `json:"truth"`
	// Methods is the per-method profile, descending self cycles.
	Methods []recorder.MethodStat `json:"methods"`
}

// Record runs the program under the recording agent (interpreter
// engine, default options) and returns the captured trace alongside
// the raw run result.
func Record(prog *core.Program) (*Trace, *core.RunResult, error) {
	rec := recorder.New()
	res, err := core.Run(prog, rec, scenarios.CanonicalOptions())
	if err != nil {
		return nil, nil, fmt.Errorf("trace: recording %s: %w", prog.Name, err)
	}
	return &Trace{
		Program:     prog.Name,
		MainResult:  res.MainResult,
		TotalCycles: res.TotalCycles,
		Truth:       res.Truth,
		Methods:     rec.Stats(),
	}, res, nil
}

// RecordApp records one of the named mini-JDK applications ("ziptool",
// "jdkapp") at its default size.
func RecordApp(app string) (*Trace, *core.RunResult, error) {
	prog, err := jdk.AppProgram(app, 0)
	if err != nil {
		return nil, nil, err
	}
	return Record(prog)
}

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Compile fits the trace onto a phase-based scenario named name (family
// "recorded") and pins its canonical observables at scale 1. The fit:
// the recorded java kernel calls and native calls per outer iteration
// become a bytecode phase and a native phase whose work parameters are
// solved from the trace's cycle split.
func Compile(tr *Trace, name string) (scenarios.Scenario, error) {
	if len(tr.Methods) == 0 {
		return scenarios.Scenario{}, fmt.Errorf("trace: %s: empty trace", tr.Program)
	}
	// Count the recorded java kernel calls (excluding the entry method,
	// which models the workload's own outer loop) and native calls.
	var javaCalls, nativeCalls uint64
	var javaSelf, nativeSelf uint64
	for _, m := range tr.Methods {
		if m.Native {
			nativeCalls += m.Calls
			nativeSelf += m.SelfCycles
		} else if m.Calls > 1 {
			// The singly-called non-native method is main itself.
			javaCalls += m.Calls
			javaSelf += m.SelfCycles
		}
	}
	// Spread the calls over an outer loop so each phase's per-iteration
	// call count fits the vocabulary's [0,256] bound with headroom.
	top := javaCalls
	if nativeCalls > top {
		top = nativeCalls
	}
	if top == 0 {
		top = 1
	}
	outer := int((top + 63) / 64)
	if outer < 1 {
		outer = 1
	}
	var phases []workloads.Phase
	if javaCalls > 0 {
		calls := clamp(int(javaCalls)/outer, 1, 256)
		// A bytecode kernel invocation costs roughly 40 cycles per unit
		// of work at the default interpreter cost; solve work from the
		// recorded self time per call.
		work := clamp(int(javaSelf/(javaCalls*40)), 1, 200)
		phases = append(phases, workloads.Phase{Kind: "bytecode", Calls: calls, Work: work})
	}
	if nativeCalls > 0 {
		calls := clamp(int(nativeCalls)/outer, 1, 256)
		work := clamp(int(nativeSelf/nativeCalls), 1, 4096)
		ph := workloads.Phase{Kind: "native", Calls: calls, Work: work}
		// The recorded JNI callbacks (minus the launcher's own) map to
		// the native phase's callback knob.
		if tr.Truth.JNICalls > 1 && nativeCalls > 0 {
			every := int(nativeCalls / (tr.Truth.JNICalls - 1))
			ph.JNIEvery = clamp(every, 1, 256)
			ph.CallbackWork = 4
		}
		phases = append(phases, ph)
	}
	s := scenarios.Scenario{
		Family: "recorded",
		Workload: workloads.Workload{
			Name:       name,
			ClassName:  "recorded/" + tr.Program,
			OuterIters: outer,
			Phases:     phases,
		},
	}
	if err := s.Validate(); err != nil {
		return scenarios.Scenario{}, fmt.Errorf("trace: compiled scenario invalid: %w", err)
	}
	if err := s.RecordPins(1); err != nil {
		return scenarios.Scenario{}, err
	}
	return s, nil
}

// CompileApp records and compiles one named application in one step.
func CompileApp(app, name string) (scenarios.Scenario, error) {
	tr, _, err := RecordApp(app)
	if err != nil {
		return scenarios.Scenario{}, err
	}
	return Compile(tr, name)
}
