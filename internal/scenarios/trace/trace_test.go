package trace

import (
	"reflect"
	"testing"

	"repro/internal/agents/recorder"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/jdk"
	"repro/internal/jit"
	"repro/internal/scenarios"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// TestRecordZiptool: the recorder's trace of the ziptool run must agree
// with the uninstrumented ground truth on the native call count and
// carry the zip kernels as its hottest natives.
func TestRecordZiptool(t *testing.T) {
	tr, res, err := RecordApp("ziptool")
	if err != nil {
		t.Fatal(err)
	}
	if tr.MainResult != res.MainResult || tr.TotalCycles != res.TotalCycles {
		t.Fatalf("trace observables drifted from the run: %+v vs %+v", tr, res)
	}
	var nativeCalls uint64
	seen := map[string]bool{}
	for _, m := range tr.Methods {
		if m.Native {
			nativeCalls += m.Calls
		}
		seen[m.Name] = true
	}
	if nativeCalls != res.Truth.NativeMethodCalls {
		t.Fatalf("recorded native calls %d, ground truth %d", nativeCalls, res.Truth.NativeMethodCalls)
	}
	for _, want := range []string{"java/util/zip/Zip.deflate(JJ)J", "java/util/zip/Zip.crc(J)J", "java/io/Stream.read(J)I"} {
		if !seen[want] {
			t.Fatalf("trace misses %s: %+v", want, tr.Methods)
		}
	}
}

// TestRecordDeterministic: recording the same program twice yields the
// identical trace — the recorder must not perturb what it measures
// non-deterministically.
func TestRecordDeterministic(t *testing.T) {
	a, _, err := RecordApp("jdkapp")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RecordApp("jdkapp")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("recording is not deterministic:\n%+v\n%+v", a, b)
	}
}

// TestRecorderEventOrder: the bounded event log opens with the entry
// method and nests enter/exit properly.
func TestRecorderEventOrder(t *testing.T) {
	prog, err := jdk.ZiptoolProgram(2)
	if err != nil {
		t.Fatal(err)
	}
	rec := recorder.New()
	rec.MaxEvents = 64
	if _, err := core.Run(prog, rec, scenarios.CanonicalOptions()); err != nil {
		t.Fatal(err)
	}
	evs := rec.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	if !evs[0].Enter || evs[0].Method != "app/ZipTool.main(I)J" {
		t.Fatalf("first event = %+v", evs[0])
	}
	depth := 0
	for i, e := range evs {
		if e.Enter {
			depth++
		} else {
			depth--
		}
		if depth < 0 {
			t.Fatalf("event %d unbalances the stack: %+v", i, evs[:i+1])
		}
	}
}

// replayLegs are the engine × loop configurations a compiled scenario's
// pins must hold under — the byte-identity contract applied to recorded
// scenarios.
func replayLegs() []struct {
	label string
	tune  func(*vm.Options)
} {
	return []struct {
		label string
		tune  func(*vm.Options)
	}{
		{"interp-fast", func(o *vm.Options) {}},
		{"interp-instr", func(o *vm.Options) { o.ForceInstrumentedLoop = true }},
		{"jit", func(o *vm.Options) { o.Tier = jit.EngineJIT }},
		{"auto", func(o *vm.Options) { o.Tier = jit.EngineAuto }},
	}
}

// replayScenario runs the scenario's workload (optionally overridden)
// under every replay leg and judges the observables against the pins.
func replayScenario(t *testing.T, s scenarios.Scenario, w workloads.Workload) {
	t.Helper()
	legs := make([]difftest.Leg, 0, 4)
	for _, leg := range replayLegs() {
		prog, err := workloads.BuildWorkload(w)
		if err != nil {
			t.Fatal(err)
		}
		opts := scenarios.CanonicalOptions()
		s.ApplyHeap(&opts)
		leg.tune(&opts)
		res, err := core.Run(prog, nil, opts)
		legs = append(legs, difftest.Leg{Label: leg.label, Obs: difftest.FromRun(res, err)})
	}
	if v := difftest.Judge(s.Name(), legs); v.Diverged() {
		t.Fatalf("replay legs diverge:\n%s", v)
	}
}

// TestCompileReplayPinned is the satellite-3 contract: record ziptool and
// jdkapp, compile each to a pinned scenario, round-trip the scenario
// through the JSON file format, and assert the pinned GroundTruth holds
// byte-identically across interp|jit|auto, fast and instrumented loops,
// sequentially and with worker threads.
func TestCompileReplayPinned(t *testing.T) {
	for _, app := range []string{"ziptool", "jdkapp"} {
		t.Run(app, func(t *testing.T) {
			s, err := CompileApp(app, app+"-trace")
			if err != nil {
				t.Fatal(err)
			}
			if s.Pins == nil || s.Pins.Scale != 1 {
				t.Fatalf("compiled scenario lacks pins: %+v", s)
			}
			if s.Family != "recorded" {
				t.Fatalf("family = %q", s.Family)
			}
			// The file format round-trips the scenario, pins included.
			data, err := scenarios.Marshal([]scenarios.Scenario{s})
			if err != nil {
				t.Fatal(err)
			}
			back, err := scenarios.ParseBytes(data)
			if err != nil {
				t.Fatal(err)
			}
			if len(back) != 1 || !reflect.DeepEqual(back[0], s) {
				t.Fatalf("marshal round trip drifted:\n%+v\n%+v", back, s)
			}
			// The canonical replay reproduces the pins exactly.
			if err := s.VerifyPins(); err != nil {
				t.Fatal(err)
			}
			// Every engine × loop leg agrees byte for byte, sequentially…
			replayScenario(t, s, s.Workload)
			// …and with worker threads.
			par := s.Workload
			par.Threads = 4
			replayScenario(t, s, par)
		})
	}
}
