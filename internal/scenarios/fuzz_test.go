package scenarios

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// FuzzScenarioFile: any scenario file that parses must survive a
// Marshal/Parse round trip unchanged — the invariant the trace compiler
// and the adversarial search rely on when they write found scenarios to
// disk. Seeds come from the checked-in example and found/ corpora so
// the fuzzer starts from real shapes (pins and heap specs included).
func FuzzScenarioFile(f *testing.F) {
	for _, pattern := range []string{
		"../../examples/scenarios/*.json",
		"../../examples/scenarios/found/*.json",
	} {
		files, err := filepath.Glob(pattern)
		if err != nil {
			f.Fatal(err)
		}
		for _, path := range files {
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		list, err := ParseBytes(data)
		if err != nil {
			t.Skip()
		}
		out, err := Marshal(list)
		if err != nil {
			t.Fatalf("parsed scenarios do not marshal: %v", err)
		}
		back, err := ParseBytes(out)
		if err != nil {
			t.Fatalf("marshalled scenarios do not re-parse: %v\n%s", err, out)
		}
		if !reflect.DeepEqual(list, back) {
			t.Fatalf("round trip drifted:\n%+v\n%+v", list, back)
		}
	})
}
