// Package scenarios is the declarative workload registry: every runnable
// scenario — the paper's eight SPEC stand-ins and any number of synthetic
// families — is a named entry holding a phase-composed workload, optional
// paper reference numbers, and per-scenario expected-value checks the
// campaign harness enforces.
//
// The built-in catalogue registers the `paper` profile (the Table I/II
// benchmarks, byte-identical to the pre-registry suite) plus the
// gc-heavy, exception-heavy, deep-chains and contended families. External
// scenario files (see file.go) register additional entries at runtime, so
// a new workload idea is a JSON entry, not a code fork.
package scenarios

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/vm"
	"repro/internal/workloads"
)

// HeapSpec is a scenario's declarative generational-heap sizing: the
// occupancy thresholds its workload needs to actually exercise
// collection. It applies only when the caller's VM options left the heap
// unset (legacy mode), so an explicit -heap-nursery flag always wins.
type HeapSpec struct {
	// NurseryWords is the minor-collection occupancy threshold in words.
	NurseryWords uint64 `json:"nurseryWords"`
	// TenuredWords is the major-collection threshold; 0 = unbounded.
	TenuredWords uint64 `json:"tenuredWords,omitempty"`
	// TenureAge is the survivals before promotion; 0 = the VM default.
	TenureAge int `json:"tenureAge,omitempty"`
	// LimitWords is a hard cap on live occupancy: an allocation that
	// still does not fit after collection throws a catchable simulated
	// OutOfMemoryError, failing the run as a cell rather than thrashing
	// forever. 0 = unlimited.
	LimitWords uint64 `json:"limitWords,omitempty"`
}

// Validate checks the spec for registrability.
func (h HeapSpec) Validate() error {
	if h.NurseryWords == 0 {
		return fmt.Errorf("scenarios: heap spec needs nurseryWords > 0")
	}
	if h.TenureAge < 0 || h.TenureAge > 64 {
		return fmt.Errorf("scenarios: heap spec tenureAge %d out of range [0,64]", h.TenureAge)
	}
	if h.LimitWords > 0 && h.LimitWords < h.NurseryWords {
		return fmt.Errorf("scenarios: heap spec limitWords %d below nurseryWords %d (the nursery could never fill)", h.LimitWords, h.NurseryWords)
	}
	return nil
}

// Config converts the spec to the VM's heap configuration.
func (h HeapSpec) Config() vm.HeapConfig {
	return vm.HeapConfig{
		NurseryWords: h.NurseryWords,
		TenuredWords: h.TenuredWords,
		TenureAge:    h.TenureAge,
		LimitWords:   h.LimitWords,
	}
}

// ApplyHeap resolves the heap configuration for one run of the scenario:
// options that already size the heap win; otherwise the scenario's spec
// (if any) applies. Shared by the harness and the run-one CLIs so a
// scenario behaves identically everywhere.
func (s Scenario) ApplyHeap(opts *vm.Options) {
	if opts.Heap.Enabled() || s.Heap == nil {
		return
	}
	opts.Heap = s.Heap.Config()
}

// Checks are the per-scenario expected-value assertions the campaign
// harness evaluates after measuring a scenario. Zero values disable a
// check, so a scenario declares only the properties it guarantees.
type Checks struct {
	// MinNativePct / MaxNativePct bound the ground-truth native share of
	// execution, in percent. MaxNativePct == 0 means unbounded.
	MinNativePct float64 `json:"minNativePct,omitempty"`
	MaxNativePct float64 `json:"maxNativePct,omitempty"`
	// MinNativeCalls / MinJNICalls are lower bounds on the ground-truth
	// transition counts, declared at the scenario's full calibrated size;
	// scaled campaign runs divide the bounds by the scale factor to
	// match the shrunken workload.
	MinNativeCalls uint64 `json:"minNativeCalls,omitempty"`
	MinJNICalls    uint64 `json:"minJNICalls,omitempty"`
	// MinThreads is a lower bound on the threads the run created.
	MinThreads int `json:"minThreads,omitempty"`
	// MaxIPAOverheadPct bounds IPA's overhead versus the uninstrumented
	// run, in percent; it is checked only when the campaign's agent set
	// includes both.
	MaxIPAOverheadPct float64 `json:"maxIPAOverheadPct,omitempty"`
	// MinMinorGCs / MinMajorGCs are lower bounds on the collection
	// counts of the uninstrumented run, declared at the scenario's full
	// calibrated size and divided by the campaign scale like the
	// transition-count minimums. They only make sense on scenarios whose
	// heap spec (or the caller's -heap flags) bounds the relevant space.
	MinMinorGCs uint64 `json:"minMinorGCs,omitempty"`
	MinMajorGCs uint64 `json:"minMajorGCs,omitempty"`
}

// Validate checks the bounds for consistency.
func (c Checks) Validate() error {
	if c.MinNativePct < 0 || c.MaxNativePct < 0 || c.MaxIPAOverheadPct < 0 || c.MinThreads < 0 {
		return fmt.Errorf("scenarios: negative check bound")
	}
	if c.MaxNativePct > 0 && c.MinNativePct > c.MaxNativePct {
		return fmt.Errorf("scenarios: minNativePct %.2f above maxNativePct %.2f",
			c.MinNativePct, c.MaxNativePct)
	}
	return nil
}

// Scenario is one registered workload with its measurement metadata.
type Scenario struct {
	// Family groups scenarios into profiles ("paper", "gc-heavy", ...).
	Family string
	// Workload is the phase-composed program description.
	Workload workloads.Workload
	// WarehouseSequence, when non-empty, runs the workload once per entry
	// with Threads set to the entry value and aggregates the results —
	// the paper's SPEC JBB2005 protocol. Empty means a single run.
	WarehouseSequence []int
	// Expected holds the paper's Table I/II reference row; zero for
	// scenarios outside the paper profile.
	Expected workloads.Expected
	// Checks are the expected-value assertions the campaign enforces.
	Checks Checks
	// Heap, when non-nil, sizes the generational heap for runs of this
	// scenario whose options left the heap in legacy mode (see
	// ApplyHeap). The gcpressure family uses it to guarantee nonzero
	// collection counts without a global flag.
	Heap *HeapSpec
	// Pins, when non-nil, are byte-exact expected observables recorded
	// from a canonical run (see pins.go); recorded and found scenarios
	// carry them so replays can assert exact reproduction. Pins are
	// deliberately not part of Identity — re-recording them must not
	// invalidate cached cells.
	Pins *Pins
}

// Name returns the scenario's workload name, its registry key.
func (s Scenario) Name() string { return s.Workload.Name }

// Identity is the scenario-content fragment of a cell's content address:
// the name plus the full workload description and warehouse sequence, so
// two scenarios that share a name but differ in content (a re-edited
// -scenario file, a registry change between releases) can never collide
// in the checkpoint journal or the result cache. Cell keys embed it next
// to the agent/options/scale fragment; the JSON field names are part of
// the key derivation and must stay stable.
type Identity struct {
	Scenario string             `json:"scenario"`
	Workload workloads.Workload `json:"workload"`
	Sequence []int              `json:"sequence,omitempty"`
}

// Identity returns the scenario's content-identity fragment.
func (s Scenario) Identity() Identity {
	return Identity{Scenario: s.Name(), Workload: s.Workload, Sequence: s.WarehouseSequence}
}

// Validate checks the scenario for registrability.
func (s Scenario) Validate() error {
	if s.Family == "" {
		return fmt.Errorf("scenarios: %s: empty family", s.Workload.Name)
	}
	if err := s.Workload.Validate(); err != nil {
		return err
	}
	for _, w := range s.WarehouseSequence {
		if w < 1 || w > 64 {
			return fmt.Errorf("scenarios: %s: warehouse count %d out of range", s.Name(), w)
		}
	}
	if err := s.Checks.Validate(); err != nil {
		return fmt.Errorf("scenarios: %s: %w", s.Name(), err)
	}
	if s.Heap != nil {
		if err := s.Heap.Validate(); err != nil {
			return fmt.Errorf("scenarios: %s: %w", s.Name(), err)
		}
	}
	if s.Pins != nil {
		if err := s.Pins.Validate(); err != nil {
			return fmt.Errorf("scenarios: %s: %w", s.Name(), err)
		}
	}
	return nil
}

// registry holds the scenarios in registration order; the order is the
// deterministic iteration order of profiles and "all".
var registry = struct {
	sync.RWMutex
	order []string
	byKey map[string]Scenario
}{byKey: map[string]Scenario{}}

// Register adds a scenario under its workload name. Duplicate names and
// invalid scenarios are errors.
func Register(s Scenario) error {
	return RegisterAll([]Scenario{s})
}

// RegisterAll registers a batch atomically: every scenario is validated
// and checked against the registry before any is added, so a failed load
// never leaves a half-registered file behind.
func RegisterAll(list []Scenario) error {
	for _, s := range list {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	registry.Lock()
	defer registry.Unlock()
	seen := map[string]bool{}
	for _, s := range list {
		if _, dup := registry.byKey[s.Name()]; dup || seen[s.Name()] {
			return fmt.Errorf("scenarios: duplicate scenario %q", s.Name())
		}
		seen[s.Name()] = true
	}
	for _, s := range list {
		registry.order = append(registry.order, s.Name())
		registry.byKey[s.Name()] = s
	}
	return nil
}

// mustRegister registers a built-in scenario; a failure is a programming
// error in the catalogue, not a runtime condition.
func mustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Get returns the scenario registered under name.
func Get(name string) (Scenario, error) {
	registry.RLock()
	defer registry.RUnlock()
	s, ok := registry.byKey[name]
	if !ok {
		return Scenario{}, fmt.Errorf("scenarios: unknown scenario %q (known: %v)", name, namesLocked())
	}
	return s, nil
}

// Names lists every registered scenario in registration order.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	return namesLocked()
}

func namesLocked() []string {
	return append([]string(nil), registry.order...)
}

// Families lists the distinct scenario families, sorted.
func Families() []string {
	registry.RLock()
	defer registry.RUnlock()
	return familiesLocked()
}

// familiesLocked is Families with the registry lock already held; error
// paths inside locked sections must use it — sync.RWMutex forbids
// recursive read-locking.
func familiesLocked() []string {
	seen := map[string]bool{}
	for _, n := range registry.order {
		seen[registry.byKey[n].Family] = true
	}
	out := make([]string, 0, len(seen))
	for f := range seen {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Profile resolves a profile name to its member scenarios in registration
// order: a family name selects that family, "all" selects everything.
func Profile(name string) ([]Scenario, error) {
	registry.RLock()
	defer registry.RUnlock()
	var out []Scenario
	for _, n := range registry.order {
		s := registry.byKey[n]
		if name == "all" || s.Family == name {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("scenarios: unknown profile %q (known: all, %v)", name, familiesLocked())
	}
	return out, nil
}

// Resolve maps a mixed list of scenario names, family names and the word
// "all" to scenarios, preserving argument order and expanding profiles in
// registration order.
func Resolve(names []string) ([]Scenario, error) {
	var out []Scenario
	for _, n := range names {
		if s, err := Get(n); err == nil {
			out = append(out, s)
			continue
		}
		group, err := Profile(n)
		if err != nil {
			return nil, fmt.Errorf("scenarios: %q is neither a scenario nor a profile (scenarios: %v; profiles: all, %v)",
				n, Names(), Families())
		}
		out = append(out, group...)
	}
	return out, nil
}
