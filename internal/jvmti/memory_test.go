package jvmti

import (
	"errors"
	"testing"

	"repro/internal/jni"
	"repro/internal/vm"
)

// TestMemoryEventCapabilityGating: the memory events follow the JVMTI
// discipline — enabling them without the matching capability is an
// error, with it they deliver through the callback table.
func TestMemoryEventCapabilityGating(t *testing.T) {
	v := vm.New(vm.DefaultOptions())
	env := NewEnv(v, jni.Attach(v))

	for _, ev := range []Event{EventVMObjectAlloc, EventGarbageCollection} {
		if err := env.SetEventNotificationMode(true, ev); !errors.Is(err, ErrMissingCapability) {
			t.Fatalf("%s enabled without capability: %v", ev, err)
		}
	}
	env.AddCapabilities(Capabilities{
		CanGenerateVMObjectAllocEvents:     true,
		CanGenerateGarbageCollectionEvents: true,
	})
	for _, ev := range []Event{EventVMObjectAlloc, EventGarbageCollection} {
		if err := env.SetEventNotificationMode(true, ev); err != nil {
			t.Fatalf("%s: %v", ev, err)
		}
		if !env.EventEnabled(ev) {
			t.Fatalf("%s not reported enabled", ev)
		}
	}
}

// TestMemoryEventDelivery drives allocations and a collection through a
// bounded-nursery VM and checks both events arrive with their payloads.
func TestMemoryEventDelivery(t *testing.T) {
	opts := vm.DefaultOptions()
	opts.Heap = vm.HeapConfig{NurseryWords: 64}
	v := vm.New(opts)
	env := NewEnv(v, jni.Attach(v))
	env.AddCapabilities(Capabilities{
		CanGenerateVMObjectAllocEvents:     true,
		CanGenerateGarbageCollectionEvents: true,
	})
	var allocs int
	var words int64
	var gcs []vm.GCInfo
	env.SetEventCallbacks(Callbacks{
		VMObjectAlloc: func(e *Env, th *vm.Thread, m *vm.Method, at int, w int64, handle int64) {
			allocs++
			words += w
			if m != nil || at != -1 {
				t.Errorf("native allocation attributed to %v@%d", m, at)
			}
			if handle == 0 {
				t.Error("allocation event with null handle")
			}
		},
		GarbageCollection: func(e *Env, th *vm.Thread, info vm.GCInfo) {
			gcs = append(gcs, info)
		},
	})
	for _, ev := range []Event{EventVMObjectAlloc, EventGarbageCollection} {
		if err := env.SetEventNotificationMode(true, ev); err != nil {
			t.Fatal(err)
		}
	}

	th := v.NewDetachedThread("alloc")
	before := th.Cycles()
	for i := 0; i < 6; i++ {
		if _, err := th.NativeNewArray(16); err != nil {
			t.Fatal(err)
		}
	}
	if allocs != 6 || words != 96 {
		t.Fatalf("saw %d allocations / %d words, want 6 / 96", allocs, words)
	}
	if len(gcs) == 0 {
		t.Fatal("no collection event despite nursery overflow")
	}
	if gcs[0].Kind != vm.GCMinor || gcs[0].Cost == 0 {
		t.Fatalf("collection info: %+v", gcs[0])
	}
	// Event dispatch and the pause itself both cost cycles on the thread.
	if th.Cycles() <= before {
		t.Fatal("memory events were free")
	}
	if th.GCCycles() == 0 {
		t.Fatal("pause not charged to the GC ground-truth component")
	}

	// Disabling stops delivery.
	if err := env.SetEventNotificationMode(false, EventVMObjectAlloc); err != nil {
		t.Fatal(err)
	}
	n := allocs
	if _, err := th.NativeNewArray(1); err != nil {
		t.Fatal(err)
	}
	if allocs != n {
		t.Fatal("allocation event delivered while disabled")
	}
}
