// Package jvmti reproduces the JVM Tool Interface surface the paper's
// profiling agents are written against (Section II-B): profiling events
// (ThreadStart, ThreadEnd, VMDeath, MethodEntry, MethodExit, and the
// ClassFileLoadHook), thread-local storage, raw monitors, JNI function
// interception, and native method prefixing (JVMTI 1.1).
//
// The two agents — SPA in internal/agents/spa and IPA in
// internal/agents/ipa — use only this interface plus the cycle counters,
// exactly mirroring the portability claim of the paper: nothing in the
// agents touches VM internals.
package jvmti

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/classfile"
	"repro/internal/jni"
	"repro/internal/vm"
)

// Event identifies a JVMTI event kind.
type Event int

// The events used by the paper's agents.
const (
	// EventThreadStart fires before a new thread's initial method runs.
	EventThreadStart Event = iota
	// EventThreadEnd fires after a terminating thread's initial method.
	EventThreadEnd
	// EventVMDeath fires when the VM terminates; no events follow it.
	EventVMDeath
	// EventMethodEntry fires on every method entry, native included.
	EventMethodEntry
	// EventMethodExit fires on every method exit, by return or exception.
	EventMethodExit
	// EventClassFileLoadHook fires before a class is linked, allowing
	// bytecode transformation (dynamic instrumentation).
	EventClassFileLoadHook
	// EventVMObjectAlloc fires on every array allocation, identifying
	// the allocating method and code offset — the JVMTI VMObjectAlloc
	// event, the substrate for allocation-site profilers.
	EventVMObjectAlloc
	// EventGarbageCollection fires after each simulated heap collection
	// with the collection's statistics. Real JVMTI splits this into
	// GarbageCollectionStart/Finish with no payload; the simulator's
	// pauses are atomic, so one event carrying vm.GCInfo replaces the
	// pair (a documented extension, like EventSample below).
	EventGarbageCollection
	// EventSample is not part of JVMTI: it models the SIGPROF-style
	// timer interrupt that system-specific sampling profilers (IBM
	// tprof, Section VI) build on. It is exposed through the same event
	// plumbing so the sampling comparator agent stays portable in this
	// substrate, while the paper's point — samplers cannot count JNI
	// calls or expose mixed call chains — remains observable.
	EventSample
	numEvents
)

// String returns the JVMTI-style event name.
func (e Event) String() string {
	switch e {
	case EventThreadStart:
		return "ThreadStart"
	case EventThreadEnd:
		return "ThreadEnd"
	case EventVMDeath:
		return "VMDeath"
	case EventMethodEntry:
		return "MethodEntry"
	case EventMethodExit:
		return "MethodExit"
	case EventClassFileLoadHook:
		return "ClassFileLoadHook"
	case EventVMObjectAlloc:
		return "VMObjectAlloc"
	case EventGarbageCollection:
		return "GarbageCollection"
	case EventSample:
		return "Sample"
	default:
		return fmt.Sprintf("Event(%d)", int(e))
	}
}

// Capabilities gates the expensive or intrusive JVMTI features, as in the
// real interface where an agent must request capabilities up front.
type Capabilities struct {
	// CanGenerateMethodEntryEvents permits EventMethodEntry delivery.
	CanGenerateMethodEntryEvents bool
	// CanGenerateMethodExitEvents permits EventMethodExit delivery.
	CanGenerateMethodExitEvents bool
	// CanSetNativeMethodPrefix permits the prefix-based wrapper scheme
	// (JVMTI 1.1, required by IPA).
	CanSetNativeMethodPrefix bool
	// CanGenerateAllClassHookEvents permits EventClassFileLoadHook.
	CanGenerateAllClassHookEvents bool
	// CanGenerateVMObjectAllocEvents permits EventVMObjectAlloc.
	CanGenerateVMObjectAllocEvents bool
	// CanGenerateGarbageCollectionEvents permits EventGarbageCollection.
	CanGenerateGarbageCollectionEvents bool
}

// Callbacks is the agent-provided event callback table.
type Callbacks struct {
	ThreadStart func(env *Env, t *vm.Thread)
	ThreadEnd   func(env *Env, t *vm.Thread)
	VMDeath     func(env *Env)
	MethodEntry func(env *Env, t *vm.Thread, m *vm.Method)
	MethodExit  func(env *Env, t *vm.Thread, m *vm.Method)
	// ClassFileLoadHook may return a transformed class, or nil to keep
	// the original.
	ClassFileLoadHook func(env *Env, c *classfile.Class) *classfile.Class
	// VMObjectAlloc receives allocation events: the allocating method
	// and code offset (nil/-1 for native-code allocations), the array
	// length in words, and the fresh handle.
	VMObjectAlloc func(env *Env, t *vm.Thread, m *vm.Method, at int, words int64, handle int64)
	// GarbageCollection receives one event per finished collection, on
	// the thread whose allocation triggered the pause.
	GarbageCollection func(env *Env, t *vm.Thread, info vm.GCInfo)
	// Sample receives PC-sampling ticks when EventSample is enabled and
	// the VM was built with a non-zero Options.SampleInterval.
	Sample func(env *Env, t *vm.Thread, inNative bool)
}

// Errors returned by the environment.
var (
	// ErrMissingCapability reports use of a feature whose capability was
	// not added.
	ErrMissingCapability = errors.New("jvmti: missing capability")
	// ErrUnknownEvent reports an out-of-range event.
	ErrUnknownEvent = errors.New("jvmti: unknown event")
)

// Env is a JVMTI environment bound to one VM. It owns the VM's hook
// surface; create it before loading classes so the ClassFileLoadHook can
// observe every class.
type Env struct {
	vm  *vm.VM
	jni *jni.JNI

	mu        sync.Mutex
	caps      Capabilities
	callbacks Callbacks
	// enabled is read on hot event-dispatch paths (every method entry/
	// exit under SPA); per-event atomics keep those reads lock-free
	// while SetEventNotificationMode serializes writers under mu.
	enabled [numEvents]atomic.Bool
}

// NewEnv creates the JVMTI environment for v, wiring its event dispatchers
// into the VM hooks. A VM supports exactly one environment: hooks and the
// per-thread local-storage slot (SetThreadLocalStorage) are singletons on
// the VM/Thread, so a second NewEnv on the same VM would displace the
// first's hooks and share its TLS. core.RunKeepVM constructs one Env per
// run; multi-agent setups must multiplex behind a single Env (as the
// agent registry does). j may be nil if the agent does not intercept JNI
// functions.
func NewEnv(v *vm.VM, j *jni.JNI) *Env {
	e := &Env{
		vm:  v,
		jni: j,
	}
	v.SetHooks(vm.Hooks{
		ThreadStart: func(t *vm.Thread) {
			if e.isEnabled(EventThreadStart) && e.callbacks.ThreadStart != nil {
				e.callbacks.ThreadStart(e, t)
			}
		},
		ThreadEnd: func(t *vm.Thread) {
			if e.isEnabled(EventThreadEnd) && e.callbacks.ThreadEnd != nil {
				e.callbacks.ThreadEnd(e, t)
			}
		},
		VMDeath: func() {
			if e.isEnabled(EventVMDeath) && e.callbacks.VMDeath != nil {
				e.callbacks.VMDeath(e)
			}
		},
		MethodEntry: func(t *vm.Thread, m *vm.Method) {
			if e.isEnabled(EventMethodEntry) && e.callbacks.MethodEntry != nil {
				e.callbacks.MethodEntry(e, t, m)
			}
		},
		MethodExit: func(t *vm.Thread, m *vm.Method) {
			if e.isEnabled(EventMethodExit) && e.callbacks.MethodExit != nil {
				e.callbacks.MethodExit(e, t, m)
			}
		},
		ClassFileLoad: func(c *classfile.Class) *classfile.Class {
			if e.isEnabled(EventClassFileLoadHook) && e.callbacks.ClassFileLoadHook != nil {
				return e.callbacks.ClassFileLoadHook(e, c)
			}
			return nil
		},
		Allocation: func(t *vm.Thread, m *vm.Method, at int, words int64, handle int64) {
			if e.isEnabled(EventVMObjectAlloc) && e.callbacks.VMObjectAlloc != nil {
				e.callbacks.VMObjectAlloc(e, t, m, at, words, handle)
			}
		},
		GC: func(t *vm.Thread, info vm.GCInfo) {
			if e.isEnabled(EventGarbageCollection) && e.callbacks.GarbageCollection != nil {
				e.callbacks.GarbageCollection(e, t, info)
			}
		},
		Sample: func(t *vm.Thread, inNative bool) {
			if e.isEnabled(EventSample) && e.callbacks.Sample != nil {
				e.callbacks.Sample(e, t, inNative)
			}
		},
	})
	return e
}

// VM returns the bound VM.
func (e *Env) VM() *vm.VM { return e.vm }

// JNI returns the bound JNI layer, or nil.
func (e *Env) JNI() *jni.JNI { return e.jni }

func (e *Env) isEnabled(ev Event) bool {
	return e.enabled[ev].Load()
}

// AddCapabilities requests capabilities; it must precede the features they
// gate.
func (e *Env) AddCapabilities(c Capabilities) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.caps.CanGenerateMethodEntryEvents = e.caps.CanGenerateMethodEntryEvents || c.CanGenerateMethodEntryEvents
	e.caps.CanGenerateMethodExitEvents = e.caps.CanGenerateMethodExitEvents || c.CanGenerateMethodExitEvents
	e.caps.CanSetNativeMethodPrefix = e.caps.CanSetNativeMethodPrefix || c.CanSetNativeMethodPrefix
	e.caps.CanGenerateAllClassHookEvents = e.caps.CanGenerateAllClassHookEvents || c.CanGenerateAllClassHookEvents
	e.caps.CanGenerateVMObjectAllocEvents = e.caps.CanGenerateVMObjectAllocEvents || c.CanGenerateVMObjectAllocEvents
	e.caps.CanGenerateGarbageCollectionEvents = e.caps.CanGenerateGarbageCollectionEvents || c.CanGenerateGarbageCollectionEvents
}

// Capabilities returns the currently granted capability set.
func (e *Env) Capabilities() Capabilities {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.caps
}

// SetEventCallbacks installs the callback table.
func (e *Env) SetEventCallbacks(cb Callbacks) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.callbacks = cb
}

// SetEventNotificationMode enables or disables delivery of one event.
// Enabling MethodEntry or MethodExit requires the corresponding capability
// and — reproducing the central performance effect of Section III —
// disables JIT compilation in the VM for the rest of the run.
func (e *Env) SetEventNotificationMode(enable bool, ev Event) error {
	if ev < 0 || ev >= numEvents {
		return fmt.Errorf("%w: %d", ErrUnknownEvent, int(ev))
	}
	e.mu.Lock()
	switch ev {
	case EventMethodEntry:
		if enable && !e.caps.CanGenerateMethodEntryEvents {
			e.mu.Unlock()
			return fmt.Errorf("%w: CanGenerateMethodEntryEvents", ErrMissingCapability)
		}
	case EventMethodExit:
		if enable && !e.caps.CanGenerateMethodExitEvents {
			e.mu.Unlock()
			return fmt.Errorf("%w: CanGenerateMethodExitEvents", ErrMissingCapability)
		}
	case EventClassFileLoadHook:
		if enable && !e.caps.CanGenerateAllClassHookEvents {
			e.mu.Unlock()
			return fmt.Errorf("%w: CanGenerateAllClassHookEvents", ErrMissingCapability)
		}
	case EventVMObjectAlloc:
		if enable && !e.caps.CanGenerateVMObjectAllocEvents {
			e.mu.Unlock()
			return fmt.Errorf("%w: CanGenerateVMObjectAllocEvents", ErrMissingCapability)
		}
	case EventGarbageCollection:
		if enable && !e.caps.CanGenerateGarbageCollectionEvents {
			e.mu.Unlock()
			return fmt.Errorf("%w: CanGenerateGarbageCollectionEvents", ErrMissingCapability)
		}
	}
	e.enabled[ev].Store(enable)
	methodEvents := e.enabled[EventMethodEntry].Load() || e.enabled[EventMethodExit].Load()
	e.mu.Unlock()
	if ev == EventMethodEntry || ev == EventMethodExit {
		e.vm.EnableMethodEvents(methodEvents)
	}
	// Memory events gate their VM-side delivery the same way method
	// events do, but without disabling the JIT model or the template
	// tier: allocations sit at fixed bytecode sites present in every
	// execution engine, so no per-instruction semantics are needed.
	if ev == EventVMObjectAlloc {
		e.vm.EnableAllocationEvents(enable)
	}
	if ev == EventGarbageCollection {
		e.vm.EnableGCEvents(enable)
	}
	return nil
}

// EventEnabled reports whether ev is currently delivered.
func (e *Env) EventEnabled(ev Event) bool { return e.isEnabled(ev) }

// SetNativeMethodPrefix announces a native-method prefix, gated by the
// CanSetNativeMethodPrefix capability (JVMTI 1.1 / JDK 1.6, Section II-B-e).
func (e *Env) SetNativeMethodPrefix(prefix string) error {
	e.mu.Lock()
	ok := e.caps.CanSetNativeMethodPrefix
	e.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: CanSetNativeMethodPrefix", ErrMissingCapability)
	}
	return e.vm.SetNativeMethodPrefix(prefix)
}

// GetJNIFunctionTable returns a snapshot of the JNI function table, for
// building interception wrappers around the original entries.
func (e *Env) GetJNIFunctionTable() (map[string]jni.Func, error) {
	if e.jni == nil {
		return nil, errors.New("jvmti: no JNI layer attached")
	}
	return e.jni.Table().Snapshot(), nil
}

// SetJNIFunctionTable installs replacement entries, the JNI function
// interception feature of Section II-B-d.
func (e *Env) SetJNIFunctionTable(entries map[string]jni.Func) error {
	if e.jni == nil {
		return errors.New("jvmti: no JNI layer attached")
	}
	return e.jni.Table().Replace(entries)
}

// SetThreadLocalStorage associates data with a thread, the analogue of the
// paper's ThreadLocalStorage.put(Thread, Object). Storage lives directly
// on the thread structure (as in a real JVM), so the get/set pair on
// every agent event handler is a plain field access instead of a locked
// map operation.
func (e *Env) SetThreadLocalStorage(t *vm.Thread, data any) {
	t.SetJVMTILocal(data)
}

// GetThreadLocalStorage returns the data associated with a thread, or nil.
func (e *Env) GetThreadLocalStorage(t *vm.Thread) any {
	return t.JVMTILocal()
}

// RawMonitor is the JVMTI synchronization aid the agents use to guard the
// global profiling statistics updated at thread termination.
type RawMonitor struct {
	name string
	mu   sync.Mutex
}

// CreateRawMonitor allocates a named raw monitor.
func (e *Env) CreateRawMonitor(name string) *RawMonitor {
	return &RawMonitor{name: name}
}

// Name returns the monitor's name.
func (m *RawMonitor) Name() string { return m.name }

// Enter acquires the monitor.
func (m *RawMonitor) Enter() { m.mu.Lock() }

// Exit releases the monitor.
func (m *RawMonitor) Exit() { m.mu.Unlock() }

// Timestamp reads the per-thread cycle counter, the PCL.getTimestamp(t) of
// the pseudo-code. It is exposed on the JVMTI Env for the agents'
// convenience; the underlying counters come from the PCL substitute in
// internal/cycles.
func (e *Env) Timestamp(t *vm.Thread) uint64 {
	// Equivalent to e.vm.Clock.Timestamp(t.ID()) for live threads (the
	// only threads agents may pass, since events fire on the thread
	// itself), but reads the thread's counter directly instead of taking
	// the registry lock — this sits on every SPA/IPA handler.
	return t.Cycles()
}
