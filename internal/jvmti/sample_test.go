package jvmti

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/jni"
	"repro/internal/vm"
)

// newSamplingVM builds a VM with sampling enabled and a spin loop plus a
// native burst.
func newSamplingVM(t *testing.T, interval uint64) (*vm.VM, *Env) {
	t.Helper()
	opts := vm.DefaultOptions()
	opts.SampleInterval = interval
	opts.SampleCost = 10
	v := vm.New(opts)
	j := jni.Attach(v)
	e := NewEnv(v, j)
	a := bytecode.NewAssembler()
	a.Const(500)
	a.Store(0)
	top := a.NewLabel()
	end := a.NewLabel()
	a.Bind(top)
	a.Load(0)
	a.Ifle(end)
	a.Inc(0, -1)
	a.Goto(top)
	a.Bind(end)
	a.InvokeStatic("s/Main", "burn", "()V")
	a.Return()
	m, err := a.FinishMethod("main", "()V", classfile.AccStatic, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	nat := &classfile.Method{
		Name: "burn", Desc: "()V",
		Flags: classfile.AccStatic | classfile.AccNative,
	}
	cls := &classfile.Class{Name: "s/Main", Methods: []*classfile.Method{m, nat}}
	if err := v.LoadClasses([]*classfile.Class{cls}); err != nil {
		t.Fatal(err)
	}
	v.RegisterNative("s/Main", "burn", "()V", func(env vm.Env, args []int64) (int64, error) {
		env.Work(3000)
		return 0, nil
	})
	return v, e
}

func TestSampleEventDelivery(t *testing.T) {
	v, e := newSamplingVM(t, 200)
	var bc, nat int
	e.SetEventCallbacks(Callbacks{
		Sample: func(env *Env, th *vm.Thread, inNative bool) {
			if inNative {
				nat++
			} else {
				bc++
			}
		},
	})
	if err := e.SetEventNotificationMode(true, EventSample); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run("s/Main", "main", "()V"); err != nil {
		t.Fatal(err)
	}
	if bc == 0 || nat == 0 {
		t.Fatalf("samples bytecode=%d native=%d, want both > 0", bc, nat)
	}
}

func TestSampleEventDisabledByDefault(t *testing.T) {
	v, e := newSamplingVM(t, 200)
	var fired int
	e.SetEventCallbacks(Callbacks{
		Sample: func(env *Env, th *vm.Thread, inNative bool) { fired++ },
	})
	// Notification mode not enabled.
	if _, err := v.Run("s/Main", "main", "()V"); err != nil {
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("sample delivered %d times while disabled", fired)
	}
}

func TestSampleEventName(t *testing.T) {
	if EventSample.String() != "Sample" {
		t.Fatalf("name = %q", EventSample.String())
	}
}
