package jvmti

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/jni"
	"repro/internal/vm"
)

// newTestVM builds a VM + JNI + JVMTI env with a trivial program:
//
//	static void main() { work(); }
//	static native void work();
//	static void spawnWorker();  (via native spawn helper in some tests)
func newTestVM(t *testing.T) (*vm.VM, *jni.JNI, *Env) {
	t.Helper()
	v := vm.New(vm.DefaultOptions())
	j := jni.Attach(v)
	e := NewEnv(v, j)
	natDef := &classfile.Method{
		Name: "work", Desc: "()V",
		Flags: classfile.AccStatic | classfile.AccNative,
	}
	a := bytecode.NewAssembler()
	a.InvokeStatic("t/Main", "work", "()V")
	a.Return()
	mainM, err := a.FinishMethod("main", "()V", classfile.AccStatic, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cls := &classfile.Class{Name: "t/Main", Methods: []*classfile.Method{mainM, natDef}}
	if err := v.LoadClasses([]*classfile.Class{cls}); err != nil {
		t.Fatal(err)
	}
	err = v.RegisterNative("t/Main", "work", "()V", func(env vm.Env, args []int64) (int64, error) {
		env.Work(100)
		return 0, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return v, j, e
}

func TestEventStrings(t *testing.T) {
	names := map[Event]string{
		EventThreadStart:       "ThreadStart",
		EventThreadEnd:         "ThreadEnd",
		EventVMDeath:           "VMDeath",
		EventMethodEntry:       "MethodEntry",
		EventMethodExit:        "MethodExit",
		EventClassFileLoadHook: "ClassFileLoadHook",
	}
	for ev, want := range names {
		if ev.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(ev), ev.String(), want)
		}
	}
}

func TestThreadAndVMDeathEvents(t *testing.T) {
	v, _, e := newTestVM(t)
	var ends int
	var death bool
	e.SetEventCallbacks(Callbacks{
		ThreadEnd: func(env *Env, th *vm.Thread) { ends++ },
		VMDeath:   func(env *Env) { death = true },
	})
	if err := e.SetEventNotificationMode(true, EventThreadEnd); err != nil {
		t.Fatal(err)
	}
	if err := e.SetEventNotificationMode(true, EventVMDeath); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Run("t/Main", "main", "()V"); err != nil {
		t.Fatal(err)
	}
	if ends != 1 {
		t.Fatalf("ThreadEnd fired %d times, want 1", ends)
	}
	if !death {
		t.Fatal("VMDeath not fired")
	}
}

func TestDisabledEventsNotDelivered(t *testing.T) {
	v, _, e := newTestVM(t)
	var fired bool
	e.SetEventCallbacks(Callbacks{
		ThreadEnd: func(env *Env, th *vm.Thread) { fired = true },
	})
	// Not enabled.
	if _, err := v.Run("t/Main", "main", "()V"); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("disabled event delivered")
	}
}

func TestMethodEventsRequireCapability(t *testing.T) {
	_, _, e := newTestVM(t)
	err := e.SetEventNotificationMode(true, EventMethodEntry)
	if !errors.Is(err, ErrMissingCapability) {
		t.Fatalf("err = %v, want ErrMissingCapability", err)
	}
	e.AddCapabilities(Capabilities{CanGenerateMethodEntryEvents: true})
	if err := e.SetEventNotificationMode(true, EventMethodEntry); err != nil {
		t.Fatal(err)
	}
}

func TestMethodEventsDisableJITThroughEnv(t *testing.T) {
	v, _, e := newTestVM(t)
	e.AddCapabilities(Capabilities{
		CanGenerateMethodEntryEvents: true,
		CanGenerateMethodExitEvents:  true,
	})
	if err := e.SetEventNotificationMode(true, EventMethodEntry); err != nil {
		t.Fatal(err)
	}
	if !v.JITDisabled() {
		t.Fatal("JIT not disabled by enabling MethodEntry")
	}
	if err := e.SetEventNotificationMode(false, EventMethodEntry); err != nil {
		t.Fatal(err)
	}
	if v.JITDisabled() {
		t.Fatal("JIT still disabled after turning events off")
	}
}

func TestMethodEntryExitDelivery(t *testing.T) {
	v, _, e := newTestVM(t)
	e.AddCapabilities(Capabilities{
		CanGenerateMethodEntryEvents: true,
		CanGenerateMethodExitEvents:  true,
	})
	var entries, exits []string
	var sawNative bool
	e.SetEventCallbacks(Callbacks{
		MethodEntry: func(env *Env, th *vm.Thread, m *vm.Method) {
			entries = append(entries, m.Name())
			if m.IsNative() {
				sawNative = true
			}
		},
		MethodExit: func(env *Env, th *vm.Thread, m *vm.Method) {
			exits = append(exits, m.Name())
		},
	})
	for _, ev := range []Event{EventMethodEntry, EventMethodExit} {
		if err := e.SetEventNotificationMode(true, ev); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := v.Run("t/Main", "main", "()V"); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || len(exits) != 2 {
		t.Fatalf("entries=%v exits=%v", entries, exits)
	}
	if !sawNative {
		t.Fatal("native method entry not observed")
	}
}

func TestUnknownEventRejected(t *testing.T) {
	_, _, e := newTestVM(t)
	if err := e.SetEventNotificationMode(true, Event(99)); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("err = %v, want ErrUnknownEvent", err)
	}
	if err := e.SetEventNotificationMode(true, Event(-1)); !errors.Is(err, ErrUnknownEvent) {
		t.Fatalf("err = %v, want ErrUnknownEvent", err)
	}
}

func TestClassFileLoadHookGatedAndTransforms(t *testing.T) {
	v := vm.New(vm.DefaultOptions())
	j := jni.Attach(v)
	e := NewEnv(v, j)
	var hooked []string
	e.SetEventCallbacks(Callbacks{
		ClassFileLoadHook: func(env *Env, c *classfile.Class) *classfile.Class {
			hooked = append(hooked, c.Name)
			n := c.Clone()
			n.SourceFile = "hooked"
			return n
		},
	})
	// Without capability, enabling fails.
	if err := e.SetEventNotificationMode(true, EventClassFileLoadHook); !errors.Is(err, ErrMissingCapability) {
		t.Fatalf("err = %v, want ErrMissingCapability", err)
	}
	e.AddCapabilities(Capabilities{CanGenerateAllClassHookEvents: true})
	if err := e.SetEventNotificationMode(true, EventClassFileLoadHook); err != nil {
		t.Fatal(err)
	}
	a := bytecode.NewAssembler()
	a.Return()
	m, err := a.FinishMethod("m", "()V", classfile.AccStatic, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := v.LoadClass(&classfile.Class{Name: "h/C", Methods: []*classfile.Method{m}})
	if err != nil {
		t.Fatal(err)
	}
	if len(hooked) != 1 || hooked[0] != "h/C" {
		t.Fatalf("hooked = %v", hooked)
	}
	if c.Def().SourceFile != "hooked" {
		t.Fatal("transformation not applied")
	}
}

func TestNativeMethodPrefixCapability(t *testing.T) {
	v, _, e := newTestVM(t)
	if err := e.SetNativeMethodPrefix("_p_"); !errors.Is(err, ErrMissingCapability) {
		t.Fatalf("err = %v, want ErrMissingCapability", err)
	}
	e.AddCapabilities(Capabilities{CanSetNativeMethodPrefix: true})
	if err := e.SetNativeMethodPrefix("_p_"); err != nil {
		t.Fatal(err)
	}
	got := v.NativeMethodPrefixes()
	if len(got) != 1 || got[0] != "_p_" {
		t.Fatalf("prefixes = %v", got)
	}
}

func TestJNIFunctionTableRoundTrip(t *testing.T) {
	v, j, e := newTestVM(t)
	orig, err := e.GetJNIFunctionTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(orig) != 90 {
		t.Fatalf("table has %d entries, want 90", len(orig))
	}
	var intercepted int
	entries := make(map[string]jni.Func)
	for name, o := range orig {
		oo := o
		entries[name] = func(env *jni.Env, call *jni.Call) (int64, error) {
			intercepted++
			return oo(env, call)
		}
	}
	if err := e.SetJNIFunctionTable(entries); err != nil {
		t.Fatal(err)
	}
	// Route a JNI call and observe the wrapper.
	th := v.NewDetachedThread("t")
	env := th.Env().(*jni.Env)
	if _, err := env.CallStatic("t/Main", "main", "()V"); err != nil {
		t.Fatal(err)
	}
	if intercepted != 1 {
		t.Fatalf("wrapper fired %d times, want 1", intercepted)
	}
	_ = j
}

func TestJNITableWithoutJNILayer(t *testing.T) {
	v := vm.New(vm.DefaultOptions())
	e := NewEnv(v, nil)
	if _, err := e.GetJNIFunctionTable(); err == nil {
		t.Fatal("expected error without JNI layer")
	}
	if err := e.SetJNIFunctionTable(nil); err == nil {
		t.Fatal("expected error without JNI layer")
	}
}

func TestThreadLocalStorage(t *testing.T) {
	v, _, e := newTestVM(t)
	th := v.NewDetachedThread("a")
	th2 := v.NewDetachedThread("b")
	if e.GetThreadLocalStorage(th) != nil {
		t.Fatal("fresh TLS not nil")
	}
	e.SetThreadLocalStorage(th, "ctx-a")
	e.SetThreadLocalStorage(th2, "ctx-b")
	if e.GetThreadLocalStorage(th) != "ctx-a" || e.GetThreadLocalStorage(th2) != "ctx-b" {
		t.Fatal("TLS values mixed up")
	}
}

func TestRawMonitorMutualExclusion(t *testing.T) {
	_, _, e := newTestVM(t)
	m := e.CreateRawMonitor("stats")
	if m.Name() != "stats" {
		t.Fatalf("Name = %q", m.Name())
	}
	var counter int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				m.Enter()
				counter++
				m.Exit()
			}
		}()
	}
	wg.Wait()
	if counter != 8000 {
		t.Fatalf("counter = %d, want 8000 (lost updates)", counter)
	}
}

func TestTimestampReadsThreadCounter(t *testing.T) {
	v, _, e := newTestVM(t)
	th := v.NewDetachedThread("t")
	before := e.Timestamp(th)
	th.NativeWork(500)
	after := e.Timestamp(th)
	if after-before != 500 {
		t.Fatalf("timestamp delta = %d, want 500", after-before)
	}
}

func TestCapabilitiesAccumulate(t *testing.T) {
	_, _, e := newTestVM(t)
	e.AddCapabilities(Capabilities{CanGenerateMethodEntryEvents: true})
	e.AddCapabilities(Capabilities{CanSetNativeMethodPrefix: true})
	c := e.Capabilities()
	if !c.CanGenerateMethodEntryEvents || !c.CanSetNativeMethodPrefix {
		t.Fatalf("capabilities = %+v", c)
	}
	if c.CanGenerateMethodExitEvents {
		t.Fatal("ungranted capability present")
	}
}
