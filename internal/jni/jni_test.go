package jni

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/vm"
)

func TestFunctionNamesCountAndShape(t *testing.T) {
	names := FunctionNames()
	// 3 families x 10 return types x 3 styles = 90, the figure the paper
	// derives in Section IV.
	if len(names) != 90 {
		t.Fatalf("len = %d, want 90", len(names))
	}
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
		if !strings.HasPrefix(n, "Call") || !strings.Contains(n, "Method") {
			t.Fatalf("malformed name %q", n)
		}
	}
	for _, want := range []string{
		"CallIntMethod", "CallIntMethodV", "CallIntMethodA",
		"CallStaticVoidMethodA", "CallNonvirtualObjectMethodV",
		"CallStaticLongMethod", "CallNonvirtualDoubleMethodA",
	} {
		if !seen[want] {
			t.Fatalf("missing %q", want)
		}
	}
}

// buildTestVM wires a VM with one Java class:
//
//	static int add(int a, int b) { return a+b; }
//	int mul(int k) { return recv * k; }   // instance; recv is the handle word
//	static native long viaJNI(long x);
func buildTestVM(t *testing.T) (*vm.VM, *JNI) {
	t.Helper()
	aa := bytecode.NewAssembler()
	aa.Load(0)
	aa.Load(1)
	aa.Add()
	aa.IReturn()
	add, err := aa.FinishMethod("add", "(II)I", classfile.AccStatic, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	am := bytecode.NewAssembler()
	am.Load(0)
	am.Load(1)
	am.Mul()
	am.IReturn()
	mul, err := am.FinishMethod("mul", "(I)I", classfile.AccPublic, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	nat := &classfile.Method{
		Name: "viaJNI", Desc: "(J)J",
		Flags: classfile.AccStatic | classfile.AccNative,
	}
	cls := &classfile.Class{Name: "t/C", Methods: []*classfile.Method{add, mul, nat}}
	v := vm.New(vm.DefaultOptions())
	if err := v.LoadClasses([]*classfile.Class{cls}); err != nil {
		t.Fatal(err)
	}
	j := Attach(v)
	return v, j
}

func TestEnvCallStaticRoutesThroughTable(t *testing.T) {
	v, j := buildTestVM(t)
	th := v.NewDetachedThread("t")
	env, ok := th.Env().(*Env)
	if !ok {
		t.Fatalf("Env factory returned %T, want *jni.Env", th.Env())
	}
	got, err := env.CallStatic("t/C", "add", "(II)I", 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Fatalf("add = %d, want 5", got)
	}
	if j.CallCount() != 1 {
		t.Fatalf("CallCount = %d, want 1", j.CallCount())
	}
}

func TestEnvCallVirtual(t *testing.T) {
	v, _ := buildTestVM(t)
	th := v.NewDetachedThread("t")
	env := th.Env().(*Env)
	got, err := env.CallVirtual("t/C", "mul", "(I)I", 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("mul = %d, want 42", got)
	}
}

func TestCallByNameAllStylesAndFamilies(t *testing.T) {
	v, j := buildTestVM(t)
	th := v.NewDetachedThread("t")
	env := th.Env().(*Env)
	for _, name := range []string{"CallStaticIntMethod", "CallStaticIntMethodV", "CallStaticIntMethodA"} {
		got, err := env.CallByName(name, &Call{
			Class: "t/C", Method: "add", Desc: "(II)I", Args: []int64{10, 20},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != 30 {
			t.Fatalf("%s = %d, want 30", name, got)
		}
	}
	for _, name := range []string{"CallIntMethodA", "CallNonvirtualIntMethodA"} {
		got, err := env.CallByName(name, &Call{
			Class: "t/C", Method: "mul", Desc: "(I)I", Recv: 3, Args: []int64{9},
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != 27 {
			t.Fatalf("%s = %d, want 27", name, got)
		}
	}
	if j.CallCount() != 5 {
		t.Fatalf("CallCount = %d, want 5", j.CallCount())
	}
}

func TestCallByNameReturnTypeMismatch(t *testing.T) {
	v, _ := buildTestVM(t)
	th := v.NewDetachedThread("t")
	env := th.Env().(*Env)
	// add returns int; calling through a Long function must fail.
	_, err := env.CallByName("CallStaticLongMethodA", &Call{
		Class: "t/C", Method: "add", Desc: "(II)I", Args: []int64{1, 2},
	})
	if err == nil {
		t.Fatal("return-type mismatch accepted")
	}
}

func TestCallByNameUnknownFunction(t *testing.T) {
	v, _ := buildTestVM(t)
	th := v.NewDetachedThread("t")
	env := th.Env().(*Env)
	if _, err := env.CallByName("CallFancyMethodX", &Call{}); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestTableInterception(t *testing.T) {
	v, j := buildTestVM(t)
	var began, ended int
	orig := j.Table().Snapshot()
	entries := make(map[string]Func)
	for _, name := range FunctionNames() {
		o := orig[name]
		entries[name] = func(env *Env, call *Call) (int64, error) {
			began++
			r, err := o(env, call)
			ended++
			return r, err
		}
	}
	if err := j.Table().Replace(entries); err != nil {
		t.Fatal(err)
	}
	th := v.NewDetachedThread("t")
	env := th.Env().(*Env)
	if _, err := env.CallStatic("t/C", "add", "(II)I", 1, 1); err != nil {
		t.Fatal(err)
	}
	if began != 1 || ended != 1 {
		t.Fatalf("wrapper fired %d/%d times, want 1/1", began, ended)
	}
}

func TestTableReplaceRejectsUnknownOrNil(t *testing.T) {
	_, j := buildTestVM(t)
	if err := j.Table().Replace(map[string]Func{"Nope": nil}); err == nil {
		t.Fatal("unknown name accepted")
	}
	if err := j.Table().Replace(map[string]Func{"CallIntMethodA": nil}); err == nil {
		t.Fatal("nil entry accepted")
	}
}

func TestNativeCodeCallsBackThroughJNI(t *testing.T) {
	// Full round trip: bytecode -> native viaJNI -> JNI CallStatic ->
	// bytecode add. The JNI call count must reflect the N2J transition.
	v, j := buildTestVM(t)
	err := v.RegisterNative("t/C", "viaJNI", "(J)J", func(env vm.Env, args []int64) (int64, error) {
		env.Work(50)
		r, err := env.CallStatic("t/C", "add", "(II)I", args[0], 100)
		return r, err
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Run("t/C", "viaJNI", "(J)J", 11)
	if err != nil {
		t.Fatal(err)
	}
	if got != 111 {
		t.Fatalf("viaJNI = %d, want 111", got)
	}
	// Two JNI calls: the thread launcher's initial invocation of viaJNI
	// (mirroring the JVM launcher calling main via JNI) plus the
	// callback from native code into add.
	if j.CallCount() != 2 {
		t.Fatalf("CallCount = %d, want 2", j.CallCount())
	}
	if v.NativeCallCount() != 1 {
		t.Fatalf("NativeCallCount = %d, want 1", v.NativeCallCount())
	}
}

func TestEnvHeapHelpers(t *testing.T) {
	v, _ := buildTestVM(t)
	th := v.NewDetachedThread("t")
	env := th.Env().(*Env)
	h, err := env.NewArray(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.ArrayStore(h, 0, 9); err != nil {
		t.Fatal(err)
	}
	got, err := env.ArrayLoad(h, 0)
	if err != nil || got != 9 {
		t.Fatalf("ArrayLoad = %d, %v", got, err)
	}
}

func TestEnvWorkAttributedToNative(t *testing.T) {
	v, _ := buildTestVM(t)
	th := v.NewDetachedThread("t")
	env := th.Env().(*Env)
	env.Work(777)
	_, nat, _ := th.GroundTruth()
	if nat != 777 {
		t.Fatalf("native ground truth = %d, want 777", nat)
	}
}

func TestFunctionForSelection(t *testing.T) {
	cases := []struct {
		family, desc, style, want string
	}{
		{"Static", "()V", "A", "CallStaticVoidMethodA"},
		{"", "(I)I", "", "CallIntMethod"},
		{"Nonvirtual", "()J", "V", "CallNonvirtualLongMethodV"},
		{"Static", "()Ljava/lang/String;", "A", "CallStaticObjectMethodA"},
		{"Static", "()[I", "A", "CallStaticObjectMethodA"},
		{"", "()D", "A", "CallDoubleMethodA"},
	}
	for _, c := range cases {
		got, err := functionFor(c.family, c.desc, c.style)
		if err != nil {
			t.Fatalf("functionFor(%q,%q,%q): %v", c.family, c.desc, c.style, err)
		}
		if got != c.want {
			t.Fatalf("functionFor(%q,%q,%q) = %q, want %q", c.family, c.desc, c.style, got, c.want)
		}
	}
}

func TestParseFunctionName(t *testing.T) {
	fam, ret := parseFunctionName("CallStaticIntMethodA")
	if fam != "Static" || ret != "I" {
		t.Fatalf("got %q %q", fam, ret)
	}
	fam, ret = parseFunctionName("CallObjectMethod")
	if fam != "" || ret != "L[" {
		t.Fatalf("got %q %q", fam, ret)
	}
	fam, ret = parseFunctionName("CallNonvirtualVoidMethodV")
	if fam != "Nonvirtual" || ret != "V" {
		t.Fatalf("got %q %q", fam, ret)
	}
}
