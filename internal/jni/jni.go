// Package jni reproduces the Java Native Interface layer of the paper's
// substrate: the per-thread JNIEnv through which native code calls back
// into Java, and — crucially for the Improved Profiling Agent — the JNI
// function table whose method-invocation entries can be intercepted.
//
// Section IV of the paper: "IPA registers wrappers for all JNI functions
// that are used to invoke methods: Call<Type>Method(), CallStatic<Type>
// Method(), as well as CallNonvirtual<Type>Method() ... in total 90
// wrappers have to be registered." This package enumerates exactly those 90
// functions (3 families x 10 return types x 3 parameter-passing styles) and
// routes every native-to-Java invocation through the current table, so an
// installed wrapper observes every N2J transition.
package jni

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/vm"
)

// Families of method-invocation functions.
var families = []string{"", "Static", "Nonvirtual"}

// Return-type components of the function names.
var types = []string{
	"Object", "Boolean", "Byte", "Char", "Short",
	"Int", "Long", "Float", "Double", "Void",
}

// Parameter-passing style suffixes: varargs, va_list, jvalue array.
var styles = []string{"", "V", "A"}

// typeToDesc maps a function-name type component to the descriptor return
// characters it accepts.
var typeToDesc = map[string]string{
	"Object":  "L[", // any reference return
	"Boolean": "Z",
	"Byte":    "B",
	"Char":    "C",
	"Short":   "S",
	"Int":     "I",
	"Long":    "J",
	"Float":   "F",
	"Double":  "D",
	"Void":    "V",
}

// FunctionNames returns the names of all 90 JNI method-invocation
// functions, in deterministic order.
func FunctionNames() []string {
	out := make([]string, 0, len(families)*len(types)*len(styles))
	for _, f := range families {
		for _, ty := range types {
			for _, s := range styles {
				out = append(out, "Call"+f+ty+"Method"+s)
			}
		}
	}
	return out
}

// Call carries the arguments of one JNI method-invocation function call.
type Call struct {
	// Function is the JNI function name used, e.g. "CallStaticIntMethodA".
	Function string
	// Class, Method, Desc identify the Java method being invoked.
	Class, Method, Desc string
	// Recv is the receiver handle for instance invocations (ignored for
	// the Static family).
	Recv int64
	// Args are the argument words (without the receiver).
	Args []int64
}

// Func is one entry of the JNI function table.
type Func func(env *Env, call *Call) (int64, error)

// Table is the JNI function table. JVMTI's JNI-function-interception
// feature swaps entries. The table is copy-on-write: dispatch (Get) is a
// single atomic pointer load plus a read of an immutable map — no lock on
// the N2J hot path — while Replace builds a fresh map under a mutex and
// publishes it atomically.
type Table struct {
	mu    sync.Mutex // serializes writers (Replace)
	funcs atomic.Pointer[map[string]Func]
}

func newTable(funcs map[string]Func) *Table {
	t := &Table{}
	t.funcs.Store(&funcs)
	return t
}

// Get returns the current entry for name.
func (t *Table) Get(name string) (Func, bool) {
	f, ok := (*t.funcs.Load())[name]
	return f, ok
}

// Snapshot returns a copy of the table contents, the analogue of JVMTI's
// GetJNIFunctionTable.
func (t *Table) Snapshot() map[string]Func {
	cur := *t.funcs.Load()
	out := make(map[string]Func, len(cur))
	for k, v := range cur {
		out[k] = v
	}
	return out
}

// Replace installs new entries for the given names, the analogue of
// SetJNIFunctionTable. Unknown function names are rejected.
func (t *Table) Replace(entries map[string]Func) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := *t.funcs.Load()
	for name := range entries {
		if _, ok := cur[name]; !ok {
			return fmt.Errorf("jni: unknown function %q", name)
		}
	}
	next := make(map[string]Func, len(cur))
	for k, v := range cur {
		next[k] = v
	}
	for name, f := range entries {
		if f == nil {
			return fmt.Errorf("jni: nil entry for %q", name)
		}
		next[name] = f
	}
	t.funcs.Store(&next)
	return nil
}

// JNI binds a function table to a VM and manufactures Env values for its
// threads.
type JNI struct {
	vm    *vm.VM
	table *Table
	// calls is the ground-truth count of dispatched JNI method
	// invocations (N2J transitions), kept independently of any agent.
	calls atomic.Uint64
}

// Attach builds the default function table for v and installs this JNI
// layer as the VM's Env factory. It returns the JNI instance for use by
// the JVMTI layer.
func Attach(v *vm.VM) *JNI {
	funcs := make(map[string]Func)
	for _, name := range FunctionNames() {
		funcs[name] = defaultImpl(name)
	}
	j := &JNI{vm: v, table: newTable(funcs)}
	v.EnvFactory = func(t *vm.Thread) vm.Env { return &Env{jni: j, thread: t} }
	return j
}

// Table returns the JNI function table.
func (j *JNI) Table() *Table { return j.table }

// VM returns the attached VM.
func (j *JNI) VM() *vm.VM { return j.vm }

// CallCount returns the ground-truth number of JNI method invocations
// dispatched through the table.
func (j *JNI) CallCount() uint64 { return j.calls.Load() }

// defaultImpl builds the standard implementation of one JNI invocation
// function: validate the descriptor's return type against the function
// name, then enter the interpreter.
func defaultImpl(name string) Func {
	family, retChars := parseFunctionName(name)
	return func(env *Env, call *Call) (int64, error) {
		if err := checkReturn(call.Desc, retChars); err != nil {
			return 0, fmt.Errorf("jni: %s: %w", name, err)
		}
		t := env.thread
		if family == "Static" {
			return t.InvokeStatic(call.Class, call.Method, call.Desc, call.Args...)
		}
		// Virtual and Nonvirtual both resolve through the declared class
		// in the simulator (no subclassing), but remain distinct table
		// entries exactly as in JNI.
		return t.InvokeVirtual(call.Class, call.Method, call.Desc, call.Recv, call.Args...)
	}
}

// parseFunctionName splits "Call<family><type>Method<style>".
func parseFunctionName(name string) (family, retChars string) {
	rest := name[len("Call"):]
	for _, f := range []string{"Static", "Nonvirtual"} {
		if len(rest) > len(f) && rest[:len(f)] == f {
			family = f
			rest = rest[len(f):]
			break
		}
	}
	for _, ty := range types {
		if len(rest) >= len(ty) && rest[:len(ty)] == ty {
			return family, typeToDesc[ty]
		}
	}
	return family, ""
}

// checkReturn validates that the descriptor's return type is invocable via
// a function accepting retChars.
func checkReturn(desc, retChars string) error {
	if desc == "" {
		return fmt.Errorf("empty descriptor")
	}
	ret := desc[len(desc)-1]
	// Reference returns end in ';' (class) or are arrays; map both to the
	// Object function characters.
	if ret == ';' {
		ret = 'L'
	}
	for i := 0; i < len(retChars); i++ {
		if retChars[i] == ret {
			return nil
		}
		if retChars[i] == '[' && containsArrayReturn(desc) {
			return nil
		}
	}
	return fmt.Errorf("descriptor %q not invocable via return type %q", desc, retChars)
}

func containsArrayReturn(desc string) bool {
	for i := len(desc) - 1; i >= 0; i-- {
		if desc[i] == ')' {
			return i+1 < len(desc) && desc[i+1] == '['
		}
	}
	return false
}

// Env is the JNIEnv of one thread. It satisfies vm.Env, so native code
// receives it transparently; its Call* methods route through the function
// table, making every N2J transition observable to interception wrappers.
type Env struct {
	jni    *JNI
	thread *vm.Thread
}

var _ vm.Env = (*Env)(nil)

// Thread returns the owning thread.
func (e *Env) Thread() *vm.Thread { return e.thread }

// VM returns the attached VM.
func (e *Env) VM() *vm.VM { return e.jni.vm }

// JNI returns the JNI layer, giving native code access to explicit
// function-variant dispatch.
func (e *Env) JNI() *JNI { return e.jni }

// Work models native computation of n cycles.
func (e *Env) Work(n uint64) { e.thread.NativeWork(n) }

// CallStatic invokes a static Java method using the array-style function
// of the appropriate return type (e.g. CallStaticIntMethodA for "...)I").
func (e *Env) CallStatic(class, method, desc string, args ...int64) (int64, error) {
	name, err := functionFor("Static", desc, "A")
	if err != nil {
		return 0, err
	}
	return e.CallByName(name, &Call{
		Function: name, Class: class, Method: method, Desc: desc, Args: args,
	})
}

// CallVirtual invokes an instance Java method via the array-style function.
func (e *Env) CallVirtual(class, method, desc string, recv int64, args ...int64) (int64, error) {
	name, err := functionFor("", desc, "A")
	if err != nil {
		return 0, err
	}
	return e.CallByName(name, &Call{
		Function: name, Class: class, Method: method, Desc: desc, Recv: recv, Args: args,
	})
}

// CallByName dispatches an invocation through the named function-table
// entry, exercising any installed interception wrapper.
func (e *Env) CallByName(name string, call *Call) (int64, error) {
	f, ok := e.jni.table.Get(name)
	if !ok {
		return 0, fmt.Errorf("jni: no such function %q", name)
	}
	e.jni.calls.Add(1)
	call.Function = name
	return f(e, call)
}

// NewArray allocates an array on the simulated heap. The allocation is
// attributed to native code (the thread is inside a native frame), so it
// feeds the heap ledgers and allocation events but never triggers a
// collection directly.
func (e *Env) NewArray(length int64) (int64, error) {
	return e.thread.NativeNewArray(length)
}

// ArrayLoad reads an element of a heap array.
func (e *Env) ArrayLoad(handle, index int64) (int64, error) {
	return e.jni.vm.Heap.Load(handle, index)
}

// ArrayStore writes an element of a heap array.
func (e *Env) ArrayStore(handle, index, value int64) error {
	return e.jni.vm.Heap.Store(handle, index, value)
}

// functionFor picks the JNI function name for a family, descriptor return
// type and style.
func functionFor(family, desc, style string) (string, error) {
	if desc == "" {
		return "", fmt.Errorf("jni: empty descriptor")
	}
	ret := desc[len(desc)-1]
	var ty string
	switch {
	case ret == ';' || containsArrayReturn(desc):
		ty = "Object"
	case ret == 'Z':
		ty = "Boolean"
	case ret == 'B':
		ty = "Byte"
	case ret == 'C':
		ty = "Char"
	case ret == 'S':
		ty = "Short"
	case ret == 'I':
		ty = "Int"
	case ret == 'J':
		ty = "Long"
	case ret == 'F':
		ty = "Float"
	case ret == 'D':
		ty = "Double"
	case ret == 'V':
		ty = "Void"
	default:
		return "", fmt.Errorf("jni: cannot infer function for descriptor %q", desc)
	}
	return builtNames[familyIndex[family]][typeIndex[ty]][styleIndex[style]], nil
}

// builtNames holds every "Call<family><type>Method<style>" string, indexed
// [family][type][style] in the order of the families/types/styles tables,
// so the per-call dispatch path never concatenates strings. The index maps
// are derived from the same tables, keeping a single source of truth.
var (
	builtNames = func() (out [3][10][3]string) {
		for fi, f := range families {
			for ti, ty := range types {
				for si, s := range styles {
					out[fi][ti][si] = "Call" + f + ty + "Method" + s
				}
			}
		}
		return out
	}()
	familyIndex = indexOf(families)
	typeIndex   = indexOf(types)
	styleIndex  = indexOf(styles)
)

func indexOf(ss []string) map[string]int {
	m := make(map[string]int, len(ss))
	for i, s := range ss {
		m[s] = i
	}
	return m
}
