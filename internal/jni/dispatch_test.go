package jni

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/vm"
)

// descForType returns a method descriptor whose return type matches the
// given JNI function-name type component.
func descForType(ty string) string {
	switch ty {
	case "Object":
		return "()Ljava/lang/Object;"
	case "Boolean":
		return "()Z"
	case "Byte":
		return "()B"
	case "Char":
		return "()C"
	case "Short":
		return "()S"
	case "Int":
		return "()I"
	case "Long":
		return "()J"
	case "Float":
		return "()F"
	case "Double":
		return "()D"
	case "Void":
		return "()V"
	}
	return ""
}

// typeOfFunction extracts the type component from a function name.
func typeOfFunction(name string) string {
	rest := strings.TrimPrefix(name, "Call")
	rest = strings.TrimPrefix(rest, "Static")
	rest = strings.TrimPrefix(rest, "Nonvirtual")
	for _, ty := range []string{
		"Object", "Boolean", "Byte", "Char", "Short",
		"Int", "Long", "Float", "Double", "Void",
	} {
		if strings.HasPrefix(rest, ty) {
			return ty
		}
	}
	return ""
}

// TestAllNinetyFunctionsDispatch builds one Java method per return type
// (static and instance forms) and invokes it through every one of the 90
// JNI functions, confirming that each entry dispatches and type-checks.
func TestAllNinetyFunctionsDispatch(t *testing.T) {
	types := []string{"Object", "Boolean", "Byte", "Char", "Short", "Int", "Long", "Float", "Double", "Void"}
	var methods []*classfile.Method
	for _, ty := range types {
		desc := descForType(ty)
		// Static form.
		as := bytecode.NewAssembler()
		if strings.HasSuffix(desc, "V") {
			as.Return()
		} else {
			as.Const(7)
			as.IReturn()
		}
		sm, err := as.FinishMethod("s"+ty, desc, classfile.AccStatic, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		// Instance form (receiver slot 0).
		ai := bytecode.NewAssembler()
		if strings.HasSuffix(desc, "V") {
			ai.Return()
		} else {
			ai.Const(7)
			ai.IReturn()
		}
		im, err := ai.FinishMethod("i"+ty, desc, classfile.AccPublic, 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		methods = append(methods, sm, im)
	}
	v := vm.New(vm.DefaultOptions())
	cls := &classfile.Class{Name: "d/All", Methods: methods}
	if err := v.LoadClasses([]*classfile.Class{cls}); err != nil {
		t.Fatal(err)
	}
	j := Attach(v)
	th := v.NewDetachedThread("t")
	env := th.Env().(*Env)

	var dispatched int
	for _, name := range FunctionNames() {
		ty := typeOfFunction(name)
		desc := descForType(ty)
		call := &Call{Class: "d/All", Desc: desc}
		if strings.HasPrefix(name, "CallStatic") {
			call.Method = "s" + ty
		} else {
			call.Method = "i" + ty
			call.Recv = 1
		}
		got, err := env.CallByName(name, call)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if desc[len(desc)-1] != 'V' && desc[len(desc)-1] != ';' && got != 7 {
			t.Fatalf("%s = %d, want 7", name, got)
		}
		dispatched++
	}
	if dispatched != 90 {
		t.Fatalf("dispatched %d functions, want 90", dispatched)
	}
	if j.CallCount() != 90 {
		t.Fatalf("CallCount = %d, want 90", j.CallCount())
	}
}
