package jni

import (
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/vm"
)

func benchEnv(b *testing.B, intercepted bool) *Env {
	b.Helper()
	a := bytecode.NewAssembler()
	a.Load(0)
	a.IReturn()
	m, err := a.FinishMethod("id", "(I)I", classfile.AccStatic, 1, nil)
	if err != nil {
		b.Fatal(err)
	}
	v := vm.New(vm.DefaultOptions())
	cls := &classfile.Class{Name: "b/J", Methods: []*classfile.Method{m}}
	if err := v.LoadClasses([]*classfile.Class{cls}); err != nil {
		b.Fatal(err)
	}
	j := Attach(v)
	if intercepted {
		orig := j.Table().Snapshot()
		entries := make(map[string]Func, len(orig))
		for name, o := range orig {
			oo := o
			entries[name] = func(env *Env, call *Call) (int64, error) {
				return oo(env, call)
			}
		}
		if err := j.Table().Replace(entries); err != nil {
			b.Fatal(err)
		}
	}
	th := v.NewDetachedThread("bench")
	return th.Env().(*Env)
}

// BenchmarkJNIDispatch measures a CallStatic through the pristine table.
func BenchmarkJNIDispatch(b *testing.B) {
	env := benchEnv(b, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.CallStatic("b/J", "id", "(I)I", 7); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJNIDispatchIntercepted measures the same call with an IPA-style
// wrapper installed around every function-table entry.
func BenchmarkJNIDispatchIntercepted(b *testing.B) {
	env := benchEnv(b, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.CallStatic("b/J", "id", "(I)I", 7); err != nil {
			b.Fatal(err)
		}
	}
}
