package workloads

import (
	"fmt"
	"strings"
)

// The phase vocabulary. A workload is a named sequence of phases; every
// phase contributes a slice of the per-iteration work of the worker loop,
// plus the kernel methods (and native functions) that work calls into.
const (
	// PhaseBytecode runs Calls invocations of a pure-bytecode kernel whose
	// body is an inner loop of Work arithmetic steps — the method-call
	// density dimension that drives SPA's per-event overhead.
	PhaseBytecode = "bytecode"
	// PhaseArray sweeps an array of Work elements (allocate, fill, fold)
	// max(Calls,1) times per iteration — the db-style data loop.
	PhaseArray = "array"
	// PhaseNative makes Calls native invocations of Work simulated cycles
	// each (J2N transitions); every JNIEvery-th invocation performs
	// CallbacksPerNative JNI callbacks into Java of CallbackWork bytecode
	// steps each (N2J transitions).
	PhaseNative = "native"
	// PhaseAlloc runs Calls invocations of an allocation-burst kernel that
	// allocates Work fresh arrays of Size words each, touching every
	// array — the gc-heavy shape.
	PhaseAlloc = "alloc"
	// PhaseDeepChain runs Calls recursive call chains of Depth frames with
	// an inner loop of Work steps at the bottom — deep stacks at extreme
	// call density.
	PhaseDeepChain = "deepchain"
	// PhaseException runs Calls protected calls that each throw after
	// descending Depth frames (and Work steps of setup); the exception
	// unwinds back to a catch-all handler — the throw/catch/unwind shape.
	PhaseException = "exception"
	// PhaseContend runs Calls invocations of a kernel that performs Work
	// read-modify-write rounds on a static field shared by every worker
	// thread — multi-thread contention on one memory location.
	PhaseContend = "contend"
	// PhaseRetain runs Calls invocations of a retention kernel: each call
	// allocates a holder array of Depth slots, then performs Work
	// allocations of Size words each, parking every fresh array in a
	// rotating holder slot. The last Depth arrays (and the holder) stay
	// reachable across many allocations, so under a bounded nursery they
	// survive minor collections and eventually tenure — the long-lived-
	// object shape the plain alloc burst (whose arrays die immediately)
	// cannot produce.
	PhaseRetain = "retain"
)

// PhaseKinds lists the known phase kinds in a stable order.
func PhaseKinds() []string {
	return []string{PhaseBytecode, PhaseArray, PhaseNative, PhaseAlloc,
		PhaseDeepChain, PhaseException, PhaseContend, PhaseRetain}
}

// Phase is one composable slice of a workload's per-iteration behaviour.
// The zero value of every parameter is meaningful per kind (see the kind
// constants); unused parameters must stay zero so phase descriptions
// round-trip through their declarative JSON form unchanged.
type Phase struct {
	// Kind selects the phase behaviour; one of PhaseKinds().
	Kind string `json:"kind"`
	// Calls is the number of kernel invocations per outer iteration.
	Calls int `json:"calls,omitempty"`
	// Work is the kind-specific size of one kernel invocation: inner-loop
	// steps (bytecode, deepchain, exception setup), array elements
	// (array), native cycles (native), allocations (alloc, retain) or
	// read-modify-write rounds (contend).
	Work int `json:"work,omitempty"`
	// Size is the words per allocation (alloc, retain; default 16).
	Size int `json:"size,omitempty"`
	// Depth is the frames per chain (deepchain), frames unwound per
	// throw (exception), or live holder slots (retain); default 1
	// (retain: 4).
	Depth int `json:"depth,omitempty"`
	// JNIEvery makes every n-th native invocation perform JNI callbacks
	// (native only); 0 disables callbacks.
	JNIEvery int `json:"jniEvery,omitempty"`
	// CallbacksPerNative is the callbacks per eligible native invocation
	// (native only; default 1).
	CallbacksPerNative int `json:"callbacksPerNative,omitempty"`
	// CallbackWork is the bytecode loop length of one JNI callback
	// (native only).
	CallbackWork int `json:"callbackWork,omitempty"`
}

// Validate checks the phase parameters for generability and rejects
// parameters that are meaningless for the kind — a "size" on an array
// phase or a "jniEvery" on a bytecode phase is almost certainly a
// misunderstanding of the vocabulary, and silently ignoring it would
// measure the wrong workload.
func (p Phase) Validate() error {
	if p.Calls < 0 || p.Calls > 256 {
		return fmt.Errorf("workloads: phase %s: calls %d out of range [0,256]", p.Kind, p.Calls)
	}
	if p.Work < 0 {
		return fmt.Errorf("workloads: phase %s: negative work %d", p.Kind, p.Work)
	}
	// Every kind uses Calls and Work; the rest are kind-specific.
	irrelevant := func(fields ...string) error {
		zero := map[string]bool{"size": p.Size == 0, "depth": p.Depth == 0,
			"jniEvery": p.JNIEvery == 0, "callbacksPerNative": p.CallbacksPerNative == 0,
			"callbackWork": p.CallbackWork == 0}
		for _, f := range fields {
			if !zero[f] {
				return fmt.Errorf("workloads: phase %s: parameter %q is not used by this kind; remove it", p.Kind, f)
			}
		}
		return nil
	}
	switch p.Kind {
	case PhaseBytecode, PhaseArray, PhaseContend:
		return irrelevant("size", "depth", "jniEvery", "callbacksPerNative", "callbackWork")
	case PhaseNative:
		if p.JNIEvery < 0 || p.CallbacksPerNative < 0 || p.CallbackWork < 0 {
			return fmt.Errorf("workloads: phase %s: negative callback parameter", p.Kind)
		}
		// Callback parameters without jniEvery would silently produce a
		// workload with zero JNI callbacks.
		if p.JNIEvery == 0 && (p.CallbacksPerNative != 0 || p.CallbackWork != 0) {
			return fmt.Errorf("workloads: phase %s: callback parameters need jniEvery > 0", p.Kind)
		}
		return irrelevant("size", "depth")
	case PhaseAlloc:
		if p.Size < 0 || p.Size > 1<<20 {
			return fmt.Errorf("workloads: phase %s: size %d out of range", p.Kind, p.Size)
		}
		return irrelevant("depth", "jniEvery", "callbacksPerNative", "callbackWork")
	case PhaseRetain:
		if p.Size < 0 || p.Size > 1<<20 {
			return fmt.Errorf("workloads: phase %s: size %d out of range", p.Kind, p.Size)
		}
		if p.Depth < 0 || p.Depth > 512 {
			return fmt.Errorf("workloads: phase %s: depth %d out of range [0,512]", p.Kind, p.Depth)
		}
		return irrelevant("jniEvery", "callbacksPerNative", "callbackWork")
	case PhaseDeepChain, PhaseException:
		if p.Depth < 0 || p.Depth > 512 {
			return fmt.Errorf("workloads: phase %s: depth %d out of range [0,512]", p.Kind, p.Depth)
		}
		return irrelevant("size", "jniEvery", "callbacksPerNative", "callbackWork")
	default:
		return fmt.Errorf("workloads: unknown phase kind %q (known: %s)",
			p.Kind, strings.Join(PhaseKinds(), ", "))
	}
}

// Workload is the phase-level description of a benchmark program: the
// composable form every scenario reduces to. The legacy Spec is one fixed
// phase sequence (bytecode, array, native); a Workload is any sequence.
type Workload struct {
	// Name is the workload name ("compress", "gc-churn", ...).
	Name string `json:"name"`
	// ClassName is the generated main class ("spec/jvm98/Compress").
	ClassName string `json:"className"`
	// OuterIters is the number of outer loop iterations per worker.
	OuterIters int `json:"outerIters"`
	// Threads is the number of worker threads (warehouses); values < 2
	// mean the main thread does all the work.
	Threads int `json:"threads,omitempty"`
	// OpsPerIter is the operation count per iteration for throughput
	// metrics (JBB2005 style).
	OpsPerIter uint64 `json:"opsPerIter,omitempty"`
	// Phases is the per-iteration work, executed in order.
	Phases []Phase `json:"phases"`
}

// Validate checks the workload for generability.
func (w Workload) Validate() error {
	if w.Name == "" || w.ClassName == "" {
		return fmt.Errorf("workloads: workload needs Name and ClassName")
	}
	if w.OuterIters <= 0 {
		return fmt.Errorf("workloads: %s: OuterIters must be positive", w.Name)
	}
	if w.Threads > 64 {
		return fmt.Errorf("workloads: %s: too many threads", w.Name)
	}
	if len(w.Phases) == 0 {
		return fmt.Errorf("workloads: %s: at least one phase required", w.Name)
	}
	for i, p := range w.Phases {
		if err := p.Validate(); err != nil {
			return fmt.Errorf("workloads: %s: phase %d: %w", w.Name, i, err)
		}
	}
	return nil
}

// Scale returns a copy with the outer iteration count divided by k
// (minimum 1), preserving the per-iteration phase mix.
func (w Workload) Scale(k int) Workload {
	if k <= 0 {
		k = 1
	}
	w.OuterIters = w.OuterIters / k
	if w.OuterIters < 1 {
		w.OuterIters = 1
	}
	return w
}

func (w Workload) workers() int {
	if w.Threads < 2 {
		return 1
	}
	return w.Threads
}

// ExpectedNativeCalls returns the number of application-level native
// method invocations the workload will perform.
func (w Workload) ExpectedNativeCalls() uint64 {
	var perIter uint64
	for _, p := range w.Phases {
		if p.Kind == PhaseNative {
			perIter += uint64(p.Calls)
		}
	}
	return uint64(w.workers()) * uint64(w.OuterIters) * perIter
}

// ExpectedJNICallbacks returns the number of JNI callbacks native code
// will make (excluding the per-thread launcher invocation).
func (w Workload) ExpectedJNICallbacks() uint64 {
	var total uint64
	perWorker := uint64(w.workers()) * uint64(w.OuterIters)
	for _, p := range w.Phases {
		if p.Kind != PhaseNative || p.JNIEvery <= 0 {
			continue
		}
		per := p.CallbacksPerNative
		if per < 1 {
			per = 1
		}
		total += perWorker * uint64(p.Calls) / uint64(p.JNIEvery) * uint64(per)
	}
	return total
}
