package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vm"
)

// paperJNIPerRun is Table II's JNI-call column divided by 15 runs,
// rounded — the per-run calibration target for each benchmark's JNI count.
var paperJNIPerRun = map[string]uint64{
	"compress":  103,
	"jess":      61,
	"db":        34,
	"javac":     1709,
	"mpegaudio": 38,
	"mtrt":      34,
	"jack":      87,
}

// TestSuiteJNICallCountsNearPaper verifies the static calibration: the
// expected JNI callback count of every JVM98 spec lands within a couple of
// calls of the paper's per-run value (counts are deterministic, so this is
// arithmetic, not measurement).
func TestSuiteJNICallCountsNearPaper(t *testing.T) {
	for _, b := range Suite() {
		want, ok := paperJNIPerRun[b.Spec.Name]
		if !ok {
			continue // jbb2005 is scaled differently
		}
		got := b.Spec.ExpectedJNICallbacks()
		diff := int64(got) - int64(want)
		if diff < -3 || diff > 30 {
			t.Errorf("%s: expected JNI callbacks %d, paper per-run %d",
				b.Spec.Name, got, want)
		}
	}
}

// TestJBBMoreJNIThanNativeCalls pins the distinctive JBB2005 shape.
func TestJBBMoreJNIThanNativeCalls(t *testing.T) {
	b, err := ByName("jbb2005")
	if err != nil {
		t.Fatal(err)
	}
	if b.Spec.ExpectedJNICallbacks() <= b.Spec.ExpectedNativeCalls() {
		t.Fatalf("jbb2005: JNI %d not above native calls %d",
			b.Spec.ExpectedJNICallbacks(), b.Spec.ExpectedNativeCalls())
	}
	// Ratio near the paper's 770k/200k = 3.85.
	ratio := float64(b.Spec.ExpectedJNICallbacks()) / float64(b.Spec.ExpectedNativeCalls())
	if ratio < 3 || ratio > 5 {
		t.Fatalf("jbb2005 JNI/native ratio = %.2f, paper 3.85", ratio)
	}
}

// TestJBBWarehouseScaling runs the JBB spec at warehouse counts 1..4 (the
// paper's warehouse sequence) and checks the throughput metric stays
// within a band — JBB's defining scaling property on a single simulated
// CPU (ops and cycles both scale with warehouses).
func TestJBBWarehouseScaling(t *testing.T) {
	base, err := ByName("jbb2005")
	if err != nil {
		t.Fatal(err)
	}
	var thpt []float64
	for _, wh := range []int{1, 2, 3, 4} {
		spec := base.Spec.Scale(20)
		spec.Threads = wh
		prog, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(prog, nil, vm.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		wantThreads := wh
		if wh < 2 {
			wantThreads = 1
		}
		if res.Threads != wantThreads {
			t.Fatalf("wh=%d: threads = %d", wh, res.Threads)
		}
		thpt = append(thpt, res.Throughput())
	}
	for i := 1; i < len(thpt); i++ {
		ratio := thpt[i] / thpt[0]
		if ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("throughput not stable across warehouses: %v", thpt)
		}
	}
}

// TestSuiteTotalCyclesOrdering: the simulated "execution times" must keep
// the paper's coarse ordering — db is the longest benchmark and mtrt/jess
// the shortest.
func TestSuiteTotalCyclesOrdering(t *testing.T) {
	cyclesOf := func(name string) uint64 {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := Build(b.Spec.Scale(20))
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(prog, nil, vm.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalCycles
	}
	db := cyclesOf("db")
	for _, name := range []string{"compress", "jess", "javac", "mpegaudio", "mtrt", "jack"} {
		if c := cyclesOf(name); c >= db {
			t.Errorf("%s (%d cycles) not shorter than db (%d)", name, c, db)
		}
	}
}
