package workloads

import "fmt"

// Expected holds the paper's Table II row for a benchmark, used by the
// harness and EXPERIMENTS.md to compare shapes. Counts are per single run
// (the paper reports 15 runs of JVM98; its counts divided by 15), further
// scaled down where noted in the spec comments to keep simulator runs
// tractable.
type Expected struct {
	// PaperNativePct is the paper's percentage of native execution.
	PaperNativePct float64
	// PaperSPAOverheadPct and PaperIPAOverheadPct are Table I.
	PaperSPAOverheadPct float64
	PaperIPAOverheadPct float64
	// PaperTimeSeconds is the uninstrumented Table I time (JVM98) — 0 for
	// JBB2005, which is throughput-metered.
	PaperTimeSeconds float64
	// PaperThroughput is Table I's JBB2005 operations/second (0 for
	// JVM98 rows).
	PaperThroughput float64
}

// Benchmark pairs a generator spec with the paper numbers it reproduces.
type Benchmark struct {
	Spec     Spec
	Expected Expected
	// WarehouseSequence, when non-empty, runs the spec once per entry
	// with Threads set to the entry value and aggregates the results —
	// the paper's SPEC JBB2005 protocol ("warehouse sequence 1, 2, 3,
	// 4"). Empty means a single run of the spec as-is.
	WarehouseSequence []int
}

// Suite returns the eight calibrated benchmarks of the evaluation: the
// seven SPEC JVM98 stand-ins plus the SPEC JBB2005 stand-in. The spec
// parameters encode three paper-derived dimensions per benchmark:
//
//   - total simulated cycles proportional to the paper's execution times
//     (about 2.5M cycles per paper second);
//   - native-method and JNI call counts near the paper's per-run counts
//     (Table II divided by 15 runs; the heaviest divided further, noted
//     per spec);
//   - method-call density ordered like Table I's SPA overheads (mtrt most
//     call-dense, db least).
//
// NativeWork values are calibrated against the ground-truth oracle so the
// measured native fraction lands near Table II's percentage.
func Suite() []Benchmark {
	return []Benchmark{
		{
			// compress: long-running with moderate call density and one
			// long native call per iteration (the compress/uncompress
			// natives).
			Spec: Spec{
				Name: "compress", ClassName: "spec/jvm98/Compress",
				OuterIters: 3057, CallsPerIter: 62, WorkPerCall: 5,
				ArrayWork: 20, NativeCallsPerIter: 12, NativeWork: 19,
				JNIEvery: 356, CallbackWork: 10, OpsPerIter: 1,
			},
			Expected: Expected{PaperNativePct: 4.54, PaperSPAOverheadPct: 7667.60,
				PaperIPAOverheadPct: 11.15, PaperTimeSeconds: 5.74},
		},
		{
			// jess: rule engine — short methods at high call density,
			// many brief native calls. Counts scaled by 1/3 vs per-run
			// paper values.
			Spec: Spec{
				Name: "jess", ClassName: "spec/jvm98/Jess",
				OuterIters: 3650, CallsPerIter: 27, WorkPerCall: 2,
				NativeCallsPerIter: 1, NativeWork: 90,
				JNIEvery: 60, CallbackWork: 10, OpsPerIter: 1,
			},
			Expected: Expected{PaperNativePct: 5.38, PaperSPAOverheadPct: 15819.46,
				PaperIPAOverheadPct: 2.68, PaperTimeSeconds: 1.49},
		},
		{
			// db: the longest benchmark — big data loops, the lowest
			// call density of the suite (hence SPA's smallest overhead),
			// negligible native share. Counts scaled by 1/2.
			Spec: Spec{
				Name: "db", ClassName: "spec/jvm98/Db",
				OuterIters: 4965, CallsPerIter: 6, WorkPerCall: 15,
				ArrayWork: 330, NativeCallsPerIter: 1, NativeWork: 74,
				JNIEvery: 146, CallbackWork: 10, OpsPerIter: 1,
			},
			Expected: Expected{PaperNativePct: 0.84, PaperSPAOverheadPct: 1527.23,
				PaperIPAOverheadPct: 0.70, PaperTimeSeconds: 14.25},
		},
		{
			// javac: compiler — native-call-heavy (I/O, intern tables)
			// and the most JNI-callback-heavy JVM98 benchmark. Counts
			// scaled by 1/3.
			Spec: Spec{
				Name: "javac", ClassName: "spec/jvm98/Javac",
				OuterIters: 8226, CallsPerIter: 2, WorkPerCall: 40,
				NativeCallsPerIter: 4, NativeWork: 49,
				JNIEvery: 19, CallbackWork: 10, OpsPerIter: 1,
			},
			Expected: Expected{PaperNativePct: 16.82, PaperSPAOverheadPct: 5813.95,
				PaperIPAOverheadPct: 13.68, PaperTimeSeconds: 3.80},
		},
		{
			// mpegaudio: decoder — short arithmetic kernels called
			// densely, tiny native share.
			Spec: Spec{
				Name: "mpegaudio", ClassName: "spec/jvm98/MpegAudio",
				OuterIters: 3537, CallsPerIter: 31, WorkPerCall: 4,
				NativeCallsPerIter: 2, NativeWork: 5,
				JNIEvery: 186, CallbackWork: 10, OpsPerIter: 1,
			},
			Expected: Expected{PaperNativePct: 0.95, PaperSPAOverheadPct: 9801.57,
				PaperIPAOverheadPct: 4.33, PaperTimeSeconds: 2.54},
		},
		{
			// mtrt: ray tracer — the most object-oriented JVM98 member:
			// minimal methods at extreme call density, which is why
			// SPA's overhead peaks here (41,775%). Counts scaled by 1/2.
			Spec: Spec{
				Name: "mtrt", ClassName: "spec/jvm98/Mtrt",
				OuterIters: 2445, CallsPerIter: 97, WorkPerCall: 0,
				NativeCallsPerIter: 1, NativeWork: 51,
				JNIEvery: 72, CallbackWork: 10, OpsPerIter: 1,
			},
			Expected: Expected{PaperNativePct: 1.62, PaperSPAOverheadPct: 41775.00,
				PaperIPAOverheadPct: 0.00, PaperTimeSeconds: 1.16},
		},
		{
			// jack: parser generator — the most native-call-intensive
			// benchmark, hence IPA's largest JVM98 overhead, but with
			// long bytecode stretches between Java-level calls (lowish
			// SPA overhead). Counts scaled by 1/8.
			Spec: Spec{
				Name: "jack", ClassName: "spec/jvm98/Jack",
				OuterIters: 5200, CallsPerIter: 2, WorkPerCall: 60,
				NativeCallsPerIter: 7, NativeWork: 53,
				JNIEvery: 418, CallbackWork: 10, OpsPerIter: 1,
			},
			Expected: Expected{PaperNativePct: 20.26, PaperSPAOverheadPct: 3448.13,
				PaperIPAOverheadPct: 20.17, PaperTimeSeconds: 3.47},
		},
		{
			// jbb2005: four warehouse threads; unlike JVM98 it makes far
			// more JNI calls than native method calls (reflection-style
			// callbacks). Counts scaled by 1/8.
			Spec: Spec{
				Name: "jbb2005", ClassName: "spec/jbb/JBB",
				OuterIters: 1560, CallsPerIter: 8, WorkPerCall: 12,
				NativeCallsPerIter: 3, NativeWork: 62,
				JNIEvery: 1, CallbacksPerNative: 4, CallbackWork: 2,
				Threads: 4, OpsPerIter: 13,
			},
			Expected: Expected{PaperNativePct: 12.19, PaperSPAOverheadPct: 10820.18,
				PaperIPAOverheadPct: 20.43, PaperThroughput: 7251},
			WarehouseSequence: []int{1, 2, 3, 4},
		},
	}
}

// ByName returns the suite benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range Suite() {
		if b.Spec.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names lists the suite benchmark names in order.
func Names() []string {
	s := Suite()
	out := make([]string, len(s))
	for i, b := range s {
		out[i] = b.Spec.Name
	}
	return out
}
