package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vm"
)

// TestCalibrationReport runs every suite benchmark uninstrumented (scaled
// down) and logs ground-truth native fractions and call counts next to the
// paper targets. Run with -v to inspect calibration.
func TestCalibrationReport(t *testing.T) {
	for _, b := range Suite() {
		spec := b.Spec.Scale(10)
		prog, err := Build(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		res, err := core.Run(prog, nil, vm.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", spec.Name, err)
		}
		t.Logf("%-10s native%%=%6.2f (paper %5.2f)  cycles=%9d  natCalls=%7d  jni=%6d  jit=%d",
			spec.Name, res.Truth.NativeFraction()*100, b.Expected.PaperNativePct,
			res.TotalCycles, res.Truth.NativeMethodCalls, res.Truth.JNICalls, res.JITCompiled)
	}
}
