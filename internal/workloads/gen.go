// Package workloads synthesizes the benchmark programs of the evaluation:
// stand-ins for the seven SPEC JVM98 benchmarks and SPEC JBB2005
// (Section V). Each workload is a real bytecode program for the simulated
// JVM, generated from a Spec that fixes the benchmark's method-call
// density, bytecode/native work mix, native-method call counts and JNI
// callback counts — the dimensions that determine both the Table I
// overheads and the Table II native-execution statistics.
//
// The suite in suite.go calibrates one Spec per benchmark so the *shape*
// of the paper's results (which benchmarks are native-heavy, which are
// call-dense, where SPA hurts most) is reproduced; absolute cycle counts
// are simulator-scale, not Pentium 4-scale.
package workloads

import (
	"fmt"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/core"
	"repro/internal/vm"
)

// Spec parameterizes one synthetic workload.
type Spec struct {
	// Name is the benchmark name ("compress", "jbb2005", ...).
	Name string
	// ClassName is the generated main class.
	ClassName string
	// OuterIters is the number of outer loop iterations per worker.
	OuterIters int
	// CallsPerIter is how many Java helper calls each iteration makes —
	// the method-call density that drives SPA's per-event overhead.
	CallsPerIter int
	// WorkPerCall is the bytecode inner-loop length of each helper call.
	WorkPerCall int
	// ArrayWork, when positive, adds an array-processing phase of that
	// many elements per iteration.
	ArrayWork int
	// NativeCallsPerIter is how many native invocations each iteration
	// makes (J2N transitions).
	NativeCallsPerIter int
	// NativeWork is the cycle cost of one native invocation's body.
	NativeWork uint64
	// JNIEvery makes every n-th native call perform JNI callbacks into
	// Java (N2J transitions); 0 disables callbacks.
	JNIEvery int
	// CallbacksPerNative is how many JNI callbacks an eligible native
	// call makes (default 1). JBB-style workloads have more JNI calls
	// than native method calls.
	CallbacksPerNative int
	// CallbackWork is the bytecode loop length of the JNI callback.
	CallbackWork int
	// Threads is the number of worker threads (warehouses); values < 2
	// mean the main thread does all the work.
	Threads int
	// OpsPerIter is the operation count per iteration for throughput
	// metrics (JBB2005 style).
	OpsPerIter uint64
}

// Validate checks the spec for generability.
func (s Spec) Validate() error {
	if s.Name == "" || s.ClassName == "" {
		return fmt.Errorf("workloads: spec needs Name and ClassName")
	}
	if s.OuterIters <= 0 {
		return fmt.Errorf("workloads: %s: OuterIters must be positive", s.Name)
	}
	if s.CallsPerIter < 0 || s.CallsPerIter > 256 {
		return fmt.Errorf("workloads: %s: CallsPerIter out of range", s.Name)
	}
	if s.NativeCallsPerIter < 0 || s.NativeCallsPerIter > 256 {
		return fmt.Errorf("workloads: %s: NativeCallsPerIter out of range", s.Name)
	}
	if s.WorkPerCall < 0 || s.ArrayWork < 0 || s.CallbackWork < 0 {
		return fmt.Errorf("workloads: %s: negative work parameter", s.Name)
	}
	if s.Threads > 64 {
		return fmt.Errorf("workloads: %s: too many threads", s.Name)
	}
	return nil
}

// Scale returns a copy of the spec with the outer iteration count divided
// by k (minimum 1), preserving the per-iteration mix. Tests run scaled
// specs; benchmarks run them at full size.
func (s Spec) Scale(k int) Spec {
	if k <= 0 {
		k = 1
	}
	s.OuterIters = s.OuterIters / k
	if s.OuterIters < 1 {
		s.OuterIters = 1
	}
	return s
}

// ExpectedNativeCalls returns the number of application-level native
// method invocations the workload will perform.
func (s Spec) ExpectedNativeCalls() uint64 {
	workers := s.workers()
	return uint64(workers) * uint64(s.OuterIters) * uint64(s.NativeCallsPerIter)
}

// ExpectedJNICallbacks returns the number of JNI callbacks native code
// will make (excluding the per-thread launcher invocation).
func (s Spec) ExpectedJNICallbacks() uint64 {
	if s.JNIEvery <= 0 {
		return 0
	}
	per := s.CallbacksPerNative
	if per < 1 {
		per = 1
	}
	return s.ExpectedNativeCalls() / uint64(s.JNIEvery) * uint64(per)
}

func (s Spec) workers() int {
	if s.Threads < 2 {
		return 1
	}
	return s.Threads
}

// Build generates the workload program: its classes, native library and
// entry point. Each call returns a fresh Program with fresh native-library
// state, so concurrent runs do not share counters.
func Build(s Spec) (*core.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	cls, err := buildClass(s)
	if err != nil {
		return nil, err
	}
	lib, err := buildLibrary(s)
	if err != nil {
		return nil, err
	}
	workers := s.workers()
	return &core.Program{
		Name:      s.Name,
		Classes:   []*classfile.Class{cls},
		Libraries: []vm.NativeLibrary{lib},
		MainClass: s.ClassName,
		MainName:  "main",
		MainDesc:  "(I)J",
		Args:      []int64{int64(s.OuterIters)},
		Ops:       uint64(workers) * uint64(s.OuterIters) * s.OpsPerIter,
	}, nil
}

// buildClass assembles the benchmark class:
//
//	static long main(int iters)      — spawns warehouses, runs a worker
//	static long worker(int iters)    — the mixed bytecode/native loop
//	static long helper(long x)       — bytecode work kernel
//	static long arrwork(long x)      — array-processing kernel
//	static long callback(long x)     — target of JNI callbacks
//	static native long nwork(long x) — the native kernel
//	static native void spawn(int n)  — warehouse creation (Threads >= 2)
func buildClass(s Spec) (*classfile.Class, error) {
	var methods []*classfile.Method

	mainM, err := buildMain(s)
	if err != nil {
		return nil, err
	}
	workerM, err := buildWorker(s)
	if err != nil {
		return nil, err
	}
	helperM, err := buildKernel("helper", s.WorkPerCall)
	if err != nil {
		return nil, err
	}
	cbM, err := buildKernel("callback", s.CallbackWork)
	if err != nil {
		return nil, err
	}
	methods = append(methods, mainM, workerM, helperM, cbM)

	if s.ArrayWork > 0 {
		arrM, err := buildArrayKernel(s.ArrayWork)
		if err != nil {
			return nil, err
		}
		methods = append(methods, arrM)
	}
	methods = append(methods, &classfile.Method{
		Name: "nwork", Desc: "(J)J",
		Flags: classfile.AccPublic | classfile.AccStatic | classfile.AccNative,
	})
	if s.workers() > 1 {
		methods = append(methods, &classfile.Method{
			Name: "spawn", Desc: "(I)V",
			Flags: classfile.AccPublic | classfile.AccStatic | classfile.AccNative,
		})
	}
	cls := &classfile.Class{
		Name:       s.ClassName,
		SourceFile: s.Name + ".gen",
		Methods:    methods,
	}
	if err := cls.Validate(); err != nil {
		return nil, err
	}
	return cls, nil
}

// buildMain: with warehouses, spawn(Threads-1) then run one worker on the
// main thread; otherwise just run the worker.
func buildMain(s Spec) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	if s.workers() > 1 {
		a.Const(int64(s.workers() - 1))
		a.InvokeStatic(s.ClassName, "spawn", "(I)V")
	}
	a.Load(0)
	a.InvokeStatic(s.ClassName, "worker", "(I)J")
	a.IReturn()
	return a.FinishMethod("main", "(I)J", classfile.AccPublic|classfile.AccStatic, 1, nil)
}

// buildWorker: locals 0=iters, 1=i, 2=acc.
func buildWorker(s Spec) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	a.Const(0)
	a.Store(2) // acc = 0
	a.Const(0)
	a.Store(1) // i = 0
	top := a.NewLabel()
	end := a.NewLabel()
	a.Bind(top)
	a.Load(1)
	a.Load(0)
	a.IfCmpge(end)
	// Bytecode phase: CallsPerIter helper calls.
	for c := 0; c < s.CallsPerIter; c++ {
		a.Load(2)
		a.InvokeStatic(s.ClassName, "helper", "(J)J")
		a.Store(2)
	}
	// Array phase.
	if s.ArrayWork > 0 {
		a.Load(2)
		a.InvokeStatic(s.ClassName, "arrwork", "(J)J")
		a.Store(2)
	}
	// Native phase: NativeCallsPerIter native calls.
	for c := 0; c < s.NativeCallsPerIter; c++ {
		a.Load(2)
		a.InvokeStatic(s.ClassName, "nwork", "(J)J")
		a.Store(2)
	}
	a.Inc(1, 1)
	a.Goto(top)
	a.Bind(end)
	a.Load(2)
	a.IReturn()
	return a.FinishMethod("worker", "(I)J", classfile.AccPublic|classfile.AccStatic, 3, nil)
}

// buildKernel: static long name(long x) { for k in 0..work { x = x*31 + 7 } return x }
func buildKernel(name string, work int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	if work > 0 {
		a.Const(int64(work))
		a.Store(1)
		top := a.NewLabel()
		end := a.NewLabel()
		a.Bind(top)
		a.Load(1)
		a.Ifle(end)
		a.Load(0)
		a.Const(31)
		a.Mul()
		a.Const(7)
		a.Add()
		a.Store(0)
		a.Inc(1, -1)
		a.Goto(top)
		a.Bind(end)
	}
	a.Load(0)
	a.IReturn()
	return a.FinishMethod(name, "(J)J", classfile.AccPublic|classfile.AccStatic, 2, nil)
}

// buildArrayKernel: allocate an array of n words once per call, fill it
// with a recurrence and fold it back into the accumulator.
func buildArrayKernel(n int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	// locals: 0=x, 1=arr, 2=k
	a.Const(int64(n))
	a.NewArray()
	a.Store(1)
	a.Const(0)
	a.Store(2)
	fillTop := a.NewLabel()
	fillEnd := a.NewLabel()
	a.Bind(fillTop)
	a.Load(2)
	a.Const(int64(n))
	a.IfCmpge(fillEnd)
	a.Load(1)
	a.Load(2)
	a.Load(0)
	a.Load(2)
	a.Add() // x + k
	a.AStore()
	a.Inc(2, 1)
	a.Goto(fillTop)
	a.Bind(fillEnd)
	// Fold: x = sum of elements.
	a.Const(0)
	a.Store(2)
	foldTop := a.NewLabel()
	foldEnd := a.NewLabel()
	a.Bind(foldTop)
	a.Load(2)
	a.Const(int64(n))
	a.IfCmpge(foldEnd)
	a.Load(0)
	a.Load(1)
	a.Load(2)
	a.ALoad()
	a.Xor()
	a.Store(0)
	a.Inc(2, 1)
	a.Goto(foldTop)
	a.Bind(foldEnd)
	a.Load(0)
	a.IReturn()
	return a.FinishMethod("arrwork", "(J)J", classfile.AccPublic|classfile.AccStatic, 3, nil)
}

// buildLibrary creates the workload's native library. The nwork kernel
// models NativeWork cycles of native computation and performs a JNI
// callback into Java every JNIEvery-th invocation. The spawn helper
// creates warehouse threads.
func buildLibrary(s Spec) (vm.NativeLibrary, error) {
	var mu sync.Mutex
	var calls uint64
	funcs := map[string]vm.NativeFunc{
		s.ClassName + ".nwork(J)J": func(env vm.Env, args []int64) (int64, error) {
			env.Work(s.NativeWork)
			doCallback := false
			if s.JNIEvery > 0 {
				mu.Lock()
				calls++
				doCallback = calls%uint64(s.JNIEvery) == 0
				mu.Unlock()
			}
			if doCallback {
				per := s.CallbacksPerNative
				if per < 1 {
					per = 1
				}
				r := args[0]
				for k := 0; k < per; k++ {
					var err error
					r, err = env.CallStatic(s.ClassName, "callback", "(J)J", r)
					if err != nil {
						return 0, err
					}
				}
				return r, nil
			}
			return args[0] + 1, nil
		},
	}
	if s.workers() > 1 {
		funcs[s.ClassName+".spawn(I)V"] = func(env vm.Env, args []int64) (int64, error) {
			env.Work(200) // thread-creation native cost
			for w := int64(0); w < args[0]; w++ {
				name := fmt.Sprintf("warehouse-%d", w+1)
				if _, err := env.VM().SpawnThread(name, s.ClassName, "worker", "(I)J", int64(s.OuterIters)); err != nil {
					return 0, err
				}
			}
			return 0, nil
		}
	}
	return vm.NativeLibrary{Name: s.Name + "-native", Funcs: funcs}, nil
}
