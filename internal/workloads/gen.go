// Package workloads synthesizes benchmark programs for the simulated JVM.
// Every workload is a named sequence of composable phases (the Workload
// type in phase.go) that compile to real bytecode through the generator in
// build.go; the phase vocabulary covers bytecode loops, array sweeps,
// native calls, JNI callbacks, allocation bursts, deep recursive chains,
// exception throw/catch and multi-thread contention.
//
// The stand-ins for the seven SPEC JVM98 benchmarks and SPEC JBB2005
// (Section V) are one fixed phase shape — bytecode, array, native —
// parameterized by the legacy Spec type below. Each Spec fixes the
// benchmark's method-call density, bytecode/native work mix, native-method
// call counts and JNI callback counts — the dimensions that determine both
// the Table I overheads and the Table II native-execution statistics. The
// suite in suite.go calibrates one Spec per benchmark so the *shape* of
// the paper's results (which benchmarks are native-heavy, which are
// call-dense, where SPA hurts most) is reproduced; absolute cycle counts
// are simulator-scale, not Pentium 4-scale.
package workloads

import (
	"fmt"

	"repro/internal/core"
)

// Spec parameterizes one synthetic workload of the paper's fixed shape: an
// outer loop of bytecode calls, an optional array sweep, and native calls
// with periodic JNI callbacks. It is the legacy, pre-phase description;
// Workload() converts it to the composable form every other scenario uses.
type Spec struct {
	// Name is the benchmark name ("compress", "jbb2005", ...).
	Name string
	// ClassName is the generated main class.
	ClassName string
	// OuterIters is the number of outer loop iterations per worker.
	OuterIters int
	// CallsPerIter is how many Java helper calls each iteration makes —
	// the method-call density that drives SPA's per-event overhead.
	CallsPerIter int
	// WorkPerCall is the bytecode inner-loop length of each helper call.
	WorkPerCall int
	// ArrayWork, when positive, adds an array-processing phase of that
	// many elements per iteration.
	ArrayWork int
	// NativeCallsPerIter is how many native invocations each iteration
	// makes (J2N transitions).
	NativeCallsPerIter int
	// NativeWork is the cycle cost of one native invocation's body.
	NativeWork uint64
	// JNIEvery makes every n-th native call perform JNI callbacks into
	// Java (N2J transitions); 0 disables callbacks.
	JNIEvery int
	// CallbacksPerNative is how many JNI callbacks an eligible native
	// call makes (default 1). JBB-style workloads have more JNI calls
	// than native method calls.
	CallbacksPerNative int
	// CallbackWork is the bytecode loop length of the JNI callback.
	CallbackWork int
	// Threads is the number of worker threads (warehouses); values < 2
	// mean the main thread does all the work.
	Threads int
	// OpsPerIter is the operation count per iteration for throughput
	// metrics (JBB2005 style).
	OpsPerIter uint64
}

// Validate checks the spec for generability.
func (s Spec) Validate() error {
	if s.Name == "" || s.ClassName == "" {
		return fmt.Errorf("workloads: spec needs Name and ClassName")
	}
	if s.OuterIters <= 0 {
		return fmt.Errorf("workloads: %s: OuterIters must be positive", s.Name)
	}
	if s.CallsPerIter < 0 || s.CallsPerIter > 256 {
		return fmt.Errorf("workloads: %s: CallsPerIter out of range", s.Name)
	}
	if s.NativeCallsPerIter < 0 || s.NativeCallsPerIter > 256 {
		return fmt.Errorf("workloads: %s: NativeCallsPerIter out of range", s.Name)
	}
	if s.WorkPerCall < 0 || s.ArrayWork < 0 || s.CallbackWork < 0 {
		return fmt.Errorf("workloads: %s: negative work parameter", s.Name)
	}
	if s.Threads > 64 {
		return fmt.Errorf("workloads: %s: too many threads", s.Name)
	}
	return nil
}

// Workload converts the legacy spec to its composable phase form: a
// bytecode phase, an array phase when ArrayWork is set, and a native
// phase. The bytecode and native phases are present even at zero call
// counts so the generated class keeps its historical shape (helper,
// callback and nwork members always exist).
func (s Spec) Workload() Workload {
	phases := []Phase{{Kind: PhaseBytecode, Calls: s.CallsPerIter, Work: s.WorkPerCall}}
	if s.ArrayWork > 0 {
		phases = append(phases, Phase{Kind: PhaseArray, Work: s.ArrayWork})
	}
	native := Phase{
		Kind:               PhaseNative,
		Calls:              s.NativeCallsPerIter,
		Work:               int(s.NativeWork),
		JNIEvery:           s.JNIEvery,
		CallbacksPerNative: s.CallbacksPerNative,
		CallbackWork:       s.CallbackWork,
	}
	// Legacy specs may carry callback parameters with JNIEvery disabled;
	// the callback never runs then, and the strict phase validator
	// rejects dead parameters, so drop them in the conversion.
	if native.JNIEvery <= 0 {
		native.JNIEvery, native.CallbacksPerNative, native.CallbackWork = 0, 0, 0
	}
	phases = append(phases, native)
	return Workload{
		Name:       s.Name,
		ClassName:  s.ClassName,
		OuterIters: s.OuterIters,
		Threads:    s.Threads,
		OpsPerIter: s.OpsPerIter,
		Phases:     phases,
	}
}

// Scale returns a copy of the spec with the outer iteration count divided
// by k (minimum 1), preserving the per-iteration mix. Tests run scaled
// specs; benchmarks run them at full size.
func (s Spec) Scale(k int) Spec {
	if k <= 0 {
		k = 1
	}
	s.OuterIters = s.OuterIters / k
	if s.OuterIters < 1 {
		s.OuterIters = 1
	}
	return s
}

// ExpectedNativeCalls returns the number of application-level native
// method invocations the workload will perform.
func (s Spec) ExpectedNativeCalls() uint64 {
	return s.Workload().ExpectedNativeCalls()
}

// ExpectedJNICallbacks returns the number of JNI callbacks native code
// will make (excluding the per-thread launcher invocation).
func (s Spec) ExpectedJNICallbacks() uint64 {
	return s.Workload().ExpectedJNICallbacks()
}

// Build generates the workload program from the legacy spec form. Each
// call returns a fresh Program with fresh native-library state, so
// concurrent runs do not share counters.
func Build(s Spec) (*core.Program, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return BuildWorkload(s.Workload())
}
