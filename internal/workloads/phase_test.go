package workloads

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/classfile"
	"repro/internal/core"
	"repro/internal/vm"
)

func TestPhaseValidate(t *testing.T) {
	bad := []Phase{
		{Kind: "warp-drive"},
		{Kind: PhaseBytecode, Calls: -1},
		{Kind: PhaseBytecode, Calls: 300},
		{Kind: PhaseBytecode, Work: -5},
		{Kind: PhaseAlloc, Size: -1},
		{Kind: PhaseDeepChain, Depth: 4096},
		{Kind: PhaseException, Depth: -1},
		{Kind: PhaseNative, JNIEvery: -1},
		// Parameters that exist but mean nothing for the kind are
		// rejected, not silently ignored.
		{Kind: PhaseArray, Size: 64},
		{Kind: PhaseBytecode, Depth: 5},
		{Kind: PhaseBytecode, JNIEvery: 3},
		{Kind: PhaseAlloc, CallbackWork: 2},
		{Kind: PhaseDeepChain, Size: 8},
		{Kind: PhaseContend, CallbacksPerNative: 1},
		{Kind: PhaseNative, Depth: 2},
		// Callback parameters with jniEvery unset would run zero callbacks.
		{Kind: PhaseNative, Calls: 1, CallbackWork: 5},
		{Kind: PhaseNative, Calls: 1, CallbacksPerNative: 2},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("phase %+v validated", p)
		}
	}
	for _, kind := range PhaseKinds() {
		if err := (Phase{Kind: kind, Calls: 2, Work: 3}).Validate(); err != nil {
			t.Errorf("minimal %s phase rejected: %v", kind, err)
		}
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := Workload{Name: "w", ClassName: "t/W", OuterIters: 10,
		Phases: []Phase{{Kind: PhaseBytecode, Calls: 1, Work: 1}}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Workload{
		{ClassName: "t/W", OuterIters: 10, Phases: good.Phases},
		{Name: "w", ClassName: "t/W", OuterIters: 0, Phases: good.Phases},
		{Name: "w", ClassName: "t/W", OuterIters: 10},
		{Name: "w", ClassName: "t/W", OuterIters: 10, Threads: 100, Phases: good.Phases},
		{Name: "w", ClassName: "t/W", OuterIters: 10,
			Phases: []Phase{{Kind: "nope"}}},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("workload %d validated: %+v", i, w)
		}
	}
	// The phase index and kind appear in the error.
	w := good
	w.Phases = []Phase{{Kind: PhaseBytecode}, {Kind: "bogus"}}
	err := w.Validate()
	if err == nil || !strings.Contains(err.Error(), "phase 1") || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error %v does not locate the bad phase", err)
	}
}

// TestLegacyClassBytesPinned pins the refactor invariant at the byte
// level: for every calibrated suite benchmark, the class the phase
// pipeline generates hashes identically to the class the pre-refactor
// monolithic generator produced (testdata/legacy_class_hashes.json was
// captured from the generator as it stood before the phase decomposition
// — PR 2, commit d8634fa — at full calibrated size). Any drift in method
// layout, bytecode, constants or reference tables shows up here, not
// just in aggregate table output.
func TestLegacyClassBytesPinned(t *testing.T) {
	data, err := os.ReadFile("testdata/legacy_class_hashes.json")
	if err != nil {
		t.Fatal(err)
	}
	var want map[string][]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	for _, b := range Suite() {
		prog, err := Build(b.Spec)
		if err != nil {
			t.Fatal(err)
		}
		wantHashes, ok := want[b.Spec.Name]
		if !ok {
			t.Errorf("%s: missing from the legacy hash pin", b.Spec.Name)
			continue
		}
		if len(prog.Classes) != len(wantHashes) {
			t.Errorf("%s: %d classes, legacy generator produced %d", b.Spec.Name, len(prog.Classes), len(wantHashes))
			continue
		}
		for i, c := range prog.Classes {
			var buf bytes.Buffer
			if err := classfile.WriteClass(&buf, c); err != nil {
				t.Fatal(err)
			}
			got := fmt.Sprintf("%x", sha256.Sum256(buf.Bytes()))
			if got != wantHashes[i] {
				t.Errorf("%s: class %d bytes diverged from the pre-refactor generator", b.Spec.Name, i)
			}
		}
	}
}

// runWorkload builds and runs a workload uninstrumented, failing the test
// on any error.
func runWorkload(t *testing.T, w Workload) *core.RunResult {
	t.Helper()
	prog, err := BuildWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(prog, nil, vm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestAllocPhaseRuns(t *testing.T) {
	res := runWorkload(t, Workload{
		Name: "alloc-t", ClassName: "t/Alloc", OuterIters: 50,
		Phases: []Phase{{Kind: PhaseAlloc, Calls: 3, Work: 4, Size: 8}},
	})
	if res.TotalCycles == 0 {
		t.Fatal("no cycles simulated")
	}
	// Purely bytecode-side: no native execution at all.
	if res.Truth.NativeMethodCalls != 0 {
		t.Fatalf("alloc workload made %d native calls", res.Truth.NativeMethodCalls)
	}
}

func TestDeepChainPhaseRuns(t *testing.T) {
	res := runWorkload(t, Workload{
		Name: "chain-t", ClassName: "t/Chain", OuterIters: 20,
		Phases: []Phase{{Kind: PhaseDeepChain, Calls: 2, Depth: 64, Work: 3}},
	})
	if res.TotalCycles == 0 {
		t.Fatal("no cycles simulated")
	}
	// Determinism: an identical build runs to the identical result.
	again := runWorkload(t, Workload{
		Name: "chain-t", ClassName: "t/Chain", OuterIters: 20,
		Phases: []Phase{{Kind: PhaseDeepChain, Calls: 2, Depth: 64, Work: 3}},
	})
	if res.MainResult != again.MainResult || res.TotalCycles != again.TotalCycles {
		t.Fatal("deep-chain workload is not deterministic")
	}
}

func TestDeepChainDepthBounded(t *testing.T) {
	// Depth beyond the validator's ceiling must be rejected before it can
	// blow the simulated frame stack.
	w := Workload{Name: "chain-t", ClassName: "t/Chain", OuterIters: 1,
		Phases: []Phase{{Kind: PhaseDeepChain, Calls: 1, Depth: 513}}}
	if _, err := BuildWorkload(w); err == nil {
		t.Fatal("depth 513 accepted")
	}
}

func TestExceptionPhaseRuns(t *testing.T) {
	// Every iteration throws and catches Calls exceptions; the run must
	// complete normally with the handler's value folded into the result.
	res := runWorkload(t, Workload{
		Name: "exc-t", ClassName: "t/Exc", OuterIters: 30,
		Phases: []Phase{{Kind: PhaseException, Calls: 4, Depth: 6, Work: 2}},
	})
	if res.TotalCycles == 0 {
		t.Fatal("no cycles simulated")
	}
	if res.Truth.NativeMethodCalls != 0 {
		t.Fatalf("exception workload made %d native calls", res.Truth.NativeMethodCalls)
	}
}

func TestContendPhaseRuns(t *testing.T) {
	res := runWorkload(t, Workload{
		Name: "contend-t", ClassName: "t/Contend", OuterIters: 40, Threads: 4,
		Phases: []Phase{{Kind: PhaseContend, Calls: 2, Work: 8}},
	})
	if res.Threads != 4 {
		t.Fatalf("threads = %d, want 4", res.Threads)
	}
	if res.TotalCycles == 0 {
		t.Fatal("no cycles simulated")
	}
}

func TestMultiplePhasesOfSameKind(t *testing.T) {
	// Two bytecode phases and two native phases coexist: kernels get
	// ordinal-suffixed names and independent native symbols.
	res := runWorkload(t, Workload{
		Name: "multi-t", ClassName: "t/Multi", OuterIters: 25,
		Phases: []Phase{
			{Kind: PhaseBytecode, Calls: 2, Work: 3},
			{Kind: PhaseNative, Calls: 1, Work: 10},
			{Kind: PhaseBytecode, Calls: 1, Work: 5},
			{Kind: PhaseNative, Calls: 2, Work: 4, JNIEvery: 3, CallbackWork: 2},
		},
	})
	if want := uint64(25 * 3); res.Truth.NativeMethodCalls != want {
		t.Fatalf("native calls = %d, want %d", res.Truth.NativeMethodCalls, want)
	}
}

func TestExpectedCountsMatchEngine(t *testing.T) {
	w := Workload{
		Name: "counts-t", ClassName: "t/Counts", OuterIters: 30,
		Phases: []Phase{
			{Kind: PhaseNative, Calls: 4, Work: 5, JNIEvery: 3, CallbacksPerNative: 2, CallbackWork: 1},
		},
	}
	res := runWorkload(t, w)
	if got, want := res.Truth.NativeMethodCalls, w.ExpectedNativeCalls(); got != want {
		t.Fatalf("native calls = %d, want %d", got, want)
	}
	// JNI calls = callbacks + the launcher invocation of the main thread.
	if got, want := res.Truth.JNICalls, w.ExpectedJNICallbacks()+1; got != want {
		t.Fatalf("JNI calls = %d, want %d", got, want)
	}
}

func TestWorkloadScale(t *testing.T) {
	w := Workload{Name: "s", ClassName: "t/S", OuterIters: 100,
		Phases: []Phase{{Kind: PhaseBytecode, Calls: 1}}}
	if got := w.Scale(40).OuterIters; got != 2 {
		t.Fatalf("Scale(40) iters = %d", got)
	}
	if got := w.Scale(1000).OuterIters; got != 1 {
		t.Fatalf("Scale(1000) iters = %d", got)
	}
	if got := w.Scale(0).OuterIters; got != 100 {
		t.Fatalf("Scale(0) iters = %d", got)
	}
}
