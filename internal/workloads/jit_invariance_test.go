package workloads

import (
	"testing"

	"repro/internal/core"
	"repro/internal/vm"
)

// TestJITInvarianceOfResults: across JIT thresholds (always-interpret,
// default, compile-immediately), every suite benchmark must produce the
// same main result and the same ground-truth call counts; only cycle
// counts may differ. This pins the correctness of the JIT model — it is a
// pure cost-model switch, never a semantic one.
func TestJITInvarianceOfResults(t *testing.T) {
	thresholds := []uint64{1, 10, 1 << 62}
	for _, b := range Suite() {
		spec := b.Spec.Scale(40)
		type outcome struct {
			result   int64
			natCalls uint64
			jniCalls uint64
		}
		var outcomes []outcome
		for _, th := range thresholds {
			opts := vm.DefaultOptions()
			opts.JITThreshold = th
			prog, err := Build(spec)
			if err != nil {
				t.Fatalf("%s: %v", spec.Name, err)
			}
			res, err := core.Run(prog, nil, opts)
			if err != nil {
				t.Fatalf("%s (threshold %d): %v", spec.Name, th, err)
			}
			outcomes = append(outcomes, outcome{
				result:   res.MainResult,
				natCalls: res.Truth.NativeMethodCalls,
				jniCalls: res.Truth.JNICalls,
			})
		}
		for i := 1; i < len(outcomes); i++ {
			if outcomes[i] != outcomes[0] {
				t.Errorf("%s: outcome differs across JIT thresholds: %+v vs %+v",
					spec.Name, outcomes[0], outcomes[i])
			}
		}
	}
}
