package workloads

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/core"
	"repro/internal/vm"
)

// BuildWorkload generates the program for a phase-described workload: its
// classes, native library and entry point. Each call returns a fresh
// Program with fresh native-library state, so concurrent runs do not share
// counters.
//
// The generated class always has the shape
//
//	static long main(int iters)   — spawns warehouses, runs a worker
//	static long worker(int iters) — the outer loop; each iteration runs
//	                                every phase's kernel calls in order
//
// followed by the phases' kernel methods in the legacy layout (loop
// kernels, JNI callback kernels, array kernels, then the newer kinds —
// see rankedKernel), the native method declarations, and the spawn
// helper when Threads >= 2. Kernel names are the phase vocabulary's
// legacy names ("helper", "arrwork", "nwork", "callback", ...) with an
// ordinal suffix when a kind occurs more than once.
func BuildWorkload(w Workload) (*core.Program, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		w:         w,
		funcs:     map[string]vm.NativeFunc{},
		kindCount: map[string]int{},
	}
	for i := range w.Phases {
		if err := g.addPhase(w.Phases[i]); err != nil {
			return nil, fmt.Errorf("workloads: %s: phase %d (%s): %w", w.Name, i, w.Phases[i].Kind, err)
		}
	}
	cls, err := g.assembleClass()
	if err != nil {
		return nil, err
	}
	prog := &core.Program{
		Name:      w.Name,
		Classes:   []*classfile.Class{cls},
		MainClass: w.ClassName,
		MainName:  "main",
		MainDesc:  "(I)J",
		Args:      []int64{int64(w.OuterIters)},
		Ops:       uint64(w.workers()) * uint64(w.OuterIters) * w.OpsPerIter,
	}
	if len(g.funcs) > 0 {
		prog.Libraries = []vm.NativeLibrary{{Name: w.Name + "-native", Funcs: g.funcs}}
	}
	return prog, nil
}

// generator accumulates the class members and native functions the phases
// contribute, in phase order.
type generator struct {
	w Workload

	kernels []rankedKernel                // Java kernel methods, layout order
	decls   []*classfile.Method           // native method declarations
	fields  []*classfile.Field            // static fields (contend)
	funcs   map[string]vm.NativeFunc      // native library symbols
	emit    []func(a *bytecode.Assembler) // per-iteration worker code, phase order

	kindCount map[string]int
}

// rankedKernel carries a kernel method with its class-layout rank. The
// layout preserves the historical class shape the legacy generator
// produced (helper, callback, arrwork, then everything newer): pure
// loop kernels first, JNI callback kernels second, array kernels third,
// and the kernels of the newer phase kinds after them — stable within a
// rank, so repeated kinds stay in phase order. The pinned legacy class
// hashes (phase_test.go) depend on this ordering.
type rankedKernel struct {
	rank int
	m    *classfile.Method
}

// Kernel layout ranks.
const (
	rankLoop  = 0 // bytecode helper kernels
	rankCB    = 1 // native-phase JNI callback kernels
	rankArray = 2 // array sweep kernels
	rankOther = 3 // alloc, deepchain, exception, contend kernels
)

// kernelName returns the phase's kernel name: the legacy base name for the
// first phase of a kind, base+ordinal from the second on ("helper",
// "helper2", ...), so single-instance workloads keep the historical class
// shape.
func kernelName(base string, ordinal int) string {
	if ordinal == 0 {
		return base
	}
	return base + strconv.Itoa(ordinal+1)
}

// emitAccCalls appends n "acc = kernel(acc)" call sites to the worker's
// per-iteration code; the accumulator lives in worker local 2.
func (g *generator) emitAccCalls(n int, name, desc string) {
	cls := g.w.ClassName
	g.emit = append(g.emit, func(a *bytecode.Assembler) {
		for c := 0; c < n; c++ {
			a.Load(2)
			a.InvokeStatic(cls, name, desc)
			a.Store(2)
		}
	})
}

// addPhase registers one phase's kernels, native functions and worker
// call sites.
func (g *generator) addPhase(p Phase) error {
	ordinal := g.kindCount[p.Kind]
	g.kindCount[p.Kind]++
	switch p.Kind {
	case PhaseBytecode:
		return g.addBytecode(p, ordinal)
	case PhaseArray:
		return g.addArray(p, ordinal)
	case PhaseNative:
		return g.addNative(p, ordinal)
	case PhaseAlloc:
		return g.addAlloc(p, ordinal)
	case PhaseDeepChain:
		return g.addDeepChain(p, ordinal)
	case PhaseException:
		return g.addException(p, ordinal)
	case PhaseContend:
		return g.addContend(p, ordinal)
	case PhaseRetain:
		return g.addRetain(p, ordinal)
	}
	return fmt.Errorf("unknown phase kind %q", p.Kind)
}

func (g *generator) addBytecode(p Phase, ordinal int) error {
	name := kernelName("helper", ordinal)
	m, err := buildLoopKernel(name, p.Work)
	if err != nil {
		return err
	}
	g.kernels = append(g.kernels, rankedKernel{rankLoop, m})
	g.emitAccCalls(p.Calls, name, "(J)J")
	return nil
}

func (g *generator) addArray(p Phase, ordinal int) error {
	name := kernelName("arrwork", ordinal)
	m, err := buildArrayKernel(name, p.Work)
	if err != nil {
		return err
	}
	g.kernels = append(g.kernels, rankedKernel{rankArray, m})
	calls := p.Calls
	if calls < 1 {
		calls = 1
	}
	g.emitAccCalls(calls, name, "(J)J")
	return nil
}

func (g *generator) addNative(p Phase, ordinal int) error {
	nworkName := kernelName("nwork", ordinal)
	cbName := kernelName("callback", ordinal)
	cb, err := buildLoopKernel(cbName, p.CallbackWork)
	if err != nil {
		return err
	}
	g.kernels = append(g.kernels, rankedKernel{rankCB, cb})
	g.decls = append(g.decls, &classfile.Method{
		Name: nworkName, Desc: "(J)J",
		Flags: classfile.AccPublic | classfile.AccStatic | classfile.AccNative,
	})

	// The nwork kernel models p.Work cycles of native computation and
	// performs JNI callbacks into Java on every JNIEvery-th invocation.
	// The invocation counter is per phase instance and per Build call, so
	// concurrent runs never share it.
	cls := g.w.ClassName
	nativeWork := uint64(p.Work)
	jniEvery := p.JNIEvery
	per := p.CallbacksPerNative
	if per < 1 {
		per = 1
	}
	var mu sync.Mutex
	var calls uint64
	g.funcs[cls+"."+nworkName+"(J)J"] = func(env vm.Env, args []int64) (int64, error) {
		env.Work(nativeWork)
		doCallback := false
		if jniEvery > 0 {
			mu.Lock()
			calls++
			doCallback = calls%uint64(jniEvery) == 0
			mu.Unlock()
		}
		if doCallback {
			r := args[0]
			for k := 0; k < per; k++ {
				var err error
				r, err = env.CallStatic(cls, cbName, "(J)J", r)
				if err != nil {
					return 0, err
				}
			}
			return r, nil
		}
		return args[0] + 1, nil
	}
	g.emitAccCalls(p.Calls, nworkName, "(J)J")
	return nil
}

func (g *generator) addAlloc(p Phase, ordinal int) error {
	name := kernelName("allocburst", ordinal)
	size := p.Size
	if size < 1 {
		size = 16
	}
	m, err := buildAllocKernel(name, p.Work, size)
	if err != nil {
		return err
	}
	g.kernels = append(g.kernels, rankedKernel{rankOther, m})
	g.emitAccCalls(p.Calls, name, "(J)J")
	return nil
}

func (g *generator) addDeepChain(p Phase, ordinal int) error {
	name := kernelName("descend", ordinal)
	m, err := buildDescendKernel(g.w.ClassName, name, p.Work)
	if err != nil {
		return err
	}
	g.kernels = append(g.kernels, rankedKernel{rankOther, m})
	depth := p.Depth
	if depth < 1 {
		depth = 1
	}
	cls := g.w.ClassName
	calls := p.Calls
	g.emit = append(g.emit, func(a *bytecode.Assembler) {
		for c := 0; c < calls; c++ {
			a.Const(int64(depth))
			a.Load(2)
			a.InvokeStatic(cls, name, "(JJ)J")
			a.Store(2)
		}
	})
	return nil
}

func (g *generator) addException(p Phase, ordinal int) error {
	tryName := kernelName("trycatch", ordinal)
	boomName := kernelName("boom", ordinal)
	depth := p.Depth
	if depth < 1 {
		depth = 1
	}
	boom, err := buildBoomKernel(g.w.ClassName, boomName, p.Work)
	if err != nil {
		return err
	}
	tc, err := buildTryCatchKernel(g.w.ClassName, tryName, boomName, depth)
	if err != nil {
		return err
	}
	g.kernels = append(g.kernels, rankedKernel{rankOther, tc}, rankedKernel{rankOther, boom})
	g.emitAccCalls(p.Calls, tryName, "(J)J")
	return nil
}

func (g *generator) addRetain(p Phase, ordinal int) error {
	name := kernelName("retain", ordinal)
	size := p.Size
	if size < 1 {
		size = 16
	}
	depth := p.Depth
	if depth < 1 {
		depth = 4
	}
	m, err := buildRetainKernel(name, p.Work, size, depth)
	if err != nil {
		return err
	}
	g.kernels = append(g.kernels, rankedKernel{rankOther, m})
	g.emitAccCalls(p.Calls, name, "(J)J")
	return nil
}

func (g *generator) addContend(p Phase, ordinal int) error {
	name := kernelName("contend", ordinal)
	field := kernelName("shared", ordinal)
	m, err := buildContendKernel(g.w.ClassName, name, field, p.Work)
	if err != nil {
		return err
	}
	g.kernels = append(g.kernels, rankedKernel{rankOther, m})
	g.fields = append(g.fields, &classfile.Field{
		Name: field, Flags: classfile.AccPublic | classfile.AccStatic,
	})
	g.emitAccCalls(p.Calls, name, "(J)J")
	return nil
}

// assembleClass lays out the benchmark class: main, worker, the phases'
// Java kernels, the native declarations, and the spawn helper for
// multi-thread workloads.
func (g *generator) assembleClass() (*classfile.Class, error) {
	w := g.w
	mainM, err := buildMain(w)
	if err != nil {
		return nil, err
	}
	workerM, err := g.buildWorker()
	if err != nil {
		return nil, err
	}
	kernels := append([]rankedKernel(nil), g.kernels...)
	sort.SliceStable(kernels, func(i, j int) bool { return kernels[i].rank < kernels[j].rank })
	methods := []*classfile.Method{mainM, workerM}
	for _, k := range kernels {
		methods = append(methods, k.m)
	}
	methods = append(methods, g.decls...)
	if w.workers() > 1 {
		methods = append(methods, &classfile.Method{
			Name: "spawn", Desc: "(I)V",
			Flags: classfile.AccPublic | classfile.AccStatic | classfile.AccNative,
		})
		g.addSpawnNative()
	}
	cls := &classfile.Class{
		Name:       w.ClassName,
		SourceFile: w.Name + ".gen",
		Fields:     g.fields,
		Methods:    methods,
	}
	if err := cls.Validate(); err != nil {
		return nil, err
	}
	return cls, nil
}

// buildMain: with warehouses, spawn(Threads-1) then run one worker on the
// main thread; otherwise just run the worker.
func buildMain(w Workload) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	if w.workers() > 1 {
		a.Const(int64(w.workers() - 1))
		a.InvokeStatic(w.ClassName, "spawn", "(I)V")
	}
	a.Load(0)
	a.InvokeStatic(w.ClassName, "worker", "(I)J")
	a.IReturn()
	return a.FinishMethod("main", "(I)J", classfile.AccPublic|classfile.AccStatic, 1, nil)
}

// buildWorker assembles the outer loop; locals 0=iters, 1=i, 2=acc. Each
// iteration runs every phase's call sites in phase order.
func (g *generator) buildWorker() (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	a.Const(0)
	a.Store(2) // acc = 0
	a.Const(0)
	a.Store(1) // i = 0
	top := a.NewLabel()
	end := a.NewLabel()
	a.Bind(top)
	a.Load(1)
	a.Load(0)
	a.IfCmpge(end)
	for _, emit := range g.emit {
		emit(a)
	}
	a.Inc(1, 1)
	a.Goto(top)
	a.Bind(end)
	a.Load(2)
	a.IReturn()
	return a.FinishMethod("worker", "(I)J", classfile.AccPublic|classfile.AccStatic, 3, nil)
}

// addSpawnNative registers the warehouse-creation helper: each spawned
// thread runs the same worker loop.
func (g *generator) addSpawnNative() {
	w := g.w
	g.funcs[w.ClassName+".spawn(I)V"] = func(env vm.Env, args []int64) (int64, error) {
		env.Work(200) // thread-creation native cost
		for i := int64(0); i < args[0]; i++ {
			name := fmt.Sprintf("warehouse-%d", i+1)
			if _, err := env.VM().SpawnThread(name, w.ClassName, "worker", "(I)J", int64(w.OuterIters)); err != nil {
				return 0, err
			}
		}
		return 0, nil
	}
}

// buildLoopKernel: static long name(long x) { for k in 0..work { x = x*31 + 7 } return x }
func buildLoopKernel(name string, work int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	if work > 0 {
		a.Const(int64(work))
		a.Store(1)
		top := a.NewLabel()
		end := a.NewLabel()
		a.Bind(top)
		a.Load(1)
		a.Ifle(end)
		a.Load(0)
		a.Const(31)
		a.Mul()
		a.Const(7)
		a.Add()
		a.Store(0)
		a.Inc(1, -1)
		a.Goto(top)
		a.Bind(end)
	}
	a.Load(0)
	a.IReturn()
	return a.FinishMethod(name, "(J)J", classfile.AccPublic|classfile.AccStatic, 2, nil)
}

// buildArrayKernel: allocate an array of n words once per call, fill it
// with a recurrence and fold it back into the accumulator.
func buildArrayKernel(name string, n int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	// locals: 0=x, 1=arr, 2=k
	a.Const(int64(n))
	a.NewArray()
	a.Store(1)
	a.Const(0)
	a.Store(2)
	fillTop := a.NewLabel()
	fillEnd := a.NewLabel()
	a.Bind(fillTop)
	a.Load(2)
	a.Const(int64(n))
	a.IfCmpge(fillEnd)
	a.Load(1)
	a.Load(2)
	a.Load(0)
	a.Load(2)
	a.Add() // x + k
	a.AStore()
	a.Inc(2, 1)
	a.Goto(fillTop)
	a.Bind(fillEnd)
	// Fold: x = xor of elements.
	a.Const(0)
	a.Store(2)
	foldTop := a.NewLabel()
	foldEnd := a.NewLabel()
	a.Bind(foldTop)
	a.Load(2)
	a.Const(int64(n))
	a.IfCmpge(foldEnd)
	a.Load(0)
	a.Load(1)
	a.Load(2)
	a.ALoad()
	a.Xor()
	a.Store(0)
	a.Inc(2, 1)
	a.Goto(foldTop)
	a.Bind(foldEnd)
	a.Load(0)
	a.IReturn()
	return a.FinishMethod(name, "(J)J", classfile.AccPublic|classfile.AccStatic, 3, nil)
}

// buildAllocKernel: per call, allocate `count` fresh arrays of `size`
// words, touching each one (store into slot 0, fold it back), so every
// allocation is live work rather than dead code.
func buildAllocKernel(name string, count, size int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	// locals: 0=x, 1=k, 2=arr
	if count > 0 {
		a.Const(int64(count))
		a.Store(1)
		top := a.NewLabel()
		end := a.NewLabel()
		a.Bind(top)
		a.Load(1)
		a.Ifle(end)
		a.Const(int64(size))
		a.NewArray()
		a.Store(2)
		a.Load(2)
		a.Const(0)
		a.Load(0)
		a.Load(1)
		a.Add() // x + k
		a.AStore()
		a.Load(0)
		a.Load(2)
		a.Const(0)
		a.ALoad()
		a.Xor()
		a.Store(0)
		a.Inc(1, -1)
		a.Goto(top)
		a.Bind(end)
	}
	a.Load(0)
	a.IReturn()
	return a.FinishMethod(name, "(J)J", classfile.AccPublic|classfile.AccStatic, 3, nil)
}

// buildRetainKernel: per call, allocate a holder array of `depth` slots,
// then perform `count` allocations of `size` words each, parking every
// fresh array in holder[k % depth] — the rotating window keeps the last
// `depth` arrays (plus the holder itself) reachable across many
// subsequent allocations, so under a bounded nursery they survive minor
// collections and tenure, unlike the alloc burst whose arrays die as
// soon as the next one arrives.
func buildRetainKernel(name string, count, size, depth int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	// locals: 0=x, 1=k, 2=holder, 3=tmp
	a.Const(int64(depth))
	a.NewArray()
	a.Store(2)
	if count > 0 {
		a.Const(int64(count))
		a.Store(1)
		top := a.NewLabel()
		end := a.NewLabel()
		a.Bind(top)
		a.Load(1)
		a.Ifle(end)
		// tmp = new long[size]; tmp[0] = x + k
		a.Const(int64(size))
		a.NewArray()
		a.Store(3)
		a.Load(3)
		a.Const(0)
		a.Load(0)
		a.Load(1)
		a.Add()
		a.AStore()
		// holder[k % depth] = tmp
		a.Load(2)
		a.Load(1)
		a.Const(int64(depth))
		a.Rem()
		a.Load(3)
		a.AStore()
		// x ^= tmp[0]
		a.Load(0)
		a.Load(3)
		a.Const(0)
		a.ALoad()
		a.Xor()
		a.Store(0)
		a.Inc(1, -1)
		a.Goto(top)
		a.Bind(end)
	}
	// Fold a retained element back so the holder stays live to the end.
	a.Load(0)
	a.Load(2)
	a.Const(0)
	a.ALoad()
	a.Xor()
	a.Store(0)
	a.Load(0)
	a.IReturn()
	return a.FinishMethod(name, "(J)J", classfile.AccPublic|classfile.AccStatic, 4, nil)
}

// buildDescendKernel: static long name(long d, long x) — recurse d frames,
// mixing x at every level, with an inner loop of `work` steps at the
// bottom. Each chain is d+1 stacked invocations.
func buildDescendKernel(class, name string, work int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	// locals: 0=d, 1=x, 2=k
	base := a.NewLabel()
	a.Load(0)
	a.Ifle(base)
	a.Load(0)
	a.Const(1)
	a.Sub() // d-1
	a.Load(1)
	a.Const(31)
	a.Mul()
	a.Const(7)
	a.Add() // x*31+7
	a.InvokeStatic(class, name, "(JJ)J")
	a.IReturn()
	a.Bind(base)
	if work > 0 {
		a.Const(int64(work))
		a.Store(2)
		top := a.NewLabel()
		end := a.NewLabel()
		a.Bind(top)
		a.Load(2)
		a.Ifle(end)
		a.Load(1)
		a.Const(31)
		a.Mul()
		a.Const(7)
		a.Add()
		a.Store(1)
		a.Inc(2, -1)
		a.Goto(top)
		a.Bind(end)
	}
	a.Load(1)
	a.IReturn()
	return a.FinishMethod(name, "(JJ)J", classfile.AccPublic|classfile.AccStatic, 3, nil)
}

// buildBoomKernel: static long name(long d, long x) — recurse d frames
// (doing `work` setup steps at the bottom) and then throw x, so the
// exception unwinds the whole chain.
func buildBoomKernel(class, name string, work int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	// locals: 0=d, 1=x, 2=k
	throwIt := a.NewLabel()
	a.Load(0)
	a.Ifle(throwIt)
	a.Load(0)
	a.Const(1)
	a.Sub()
	a.Load(1)
	a.InvokeStatic(class, name, "(JJ)J")
	a.IReturn()
	a.Bind(throwIt)
	if work > 0 {
		a.Const(int64(work))
		a.Store(2)
		top := a.NewLabel()
		end := a.NewLabel()
		a.Bind(top)
		a.Load(2)
		a.Ifle(end)
		a.Load(1)
		a.Const(31)
		a.Mul()
		a.Const(7)
		a.Add()
		a.Store(1)
		a.Inc(2, -1)
		a.Goto(top)
		a.Bind(end)
	}
	a.Load(1)
	a.Throw()
	return a.FinishMethod(name, "(JJ)J", classfile.AccPublic|classfile.AccStatic, 3, nil)
}

// buildContendKernel: per call, run `work` read-modify-write rounds on the
// class's shared static field — every worker thread hammers the same
// location, and the cooperative scheduler interleaves them at quantum
// boundaries.
func buildContendKernel(class, name, field string, work int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	// locals: 0=x, 1=k
	if work > 0 {
		a.Const(int64(work))
		a.Store(1)
		top := a.NewLabel()
		end := a.NewLabel()
		a.Bind(top)
		a.Load(1)
		a.Ifle(end)
		a.GetStatic(class, field)
		a.Load(0)
		a.Add()
		a.PutStatic(class, field) // shared += x
		a.GetStatic(class, field)
		a.Load(0)
		a.Xor()
		a.Store(0) // x ^= shared
		a.Inc(1, -1)
		a.Goto(top)
		a.Bind(end)
	}
	a.Load(0)
	a.IReturn()
	return a.FinishMethod(name, "(J)J", classfile.AccPublic|classfile.AccStatic, 2, nil)
}

// buildTryCatchKernel: static long name(long x) { try { return boom(depth,
// x); } catch (any t) { return t + 1; } } — the protected region covers the
// whole call, and the catch-all handler folds the thrown value back into
// the accumulator.
func buildTryCatchKernel(class, name, boomName string, depth int) (*classfile.Method, error) {
	a := bytecode.NewAssembler()
	a.Const(int64(depth))
	a.Load(0)
	a.InvokeStatic(class, boomName, "(JJ)J")
	a.IReturn()
	handler := a.Offset()
	a.EnterHandler()
	a.Const(1)
	a.Add()
	a.IReturn()
	return a.FinishMethod(name, "(J)J", classfile.AccPublic|classfile.AccStatic, 1,
		[]classfile.ExceptionEntry{{StartPC: 0, EndPC: handler, HandlerPC: handler}})
}
