package workloads

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/vm"
)

func smallSpec() Spec {
	return Spec{
		Name: "small", ClassName: "t/Small",
		OuterIters: 20, CallsPerIter: 2, WorkPerCall: 5,
		ArrayWork: 8, NativeCallsPerIter: 3, NativeWork: 40,
		JNIEvery: 4, CallbackWork: 3, OpsPerIter: 2,
	}
}

func TestSpecValidate(t *testing.T) {
	if err := smallSpec().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.ClassName = "" },
		func(s *Spec) { s.OuterIters = 0 },
		func(s *Spec) { s.CallsPerIter = -1 },
		func(s *Spec) { s.CallsPerIter = 500 },
		func(s *Spec) { s.NativeCallsPerIter = 500 },
		func(s *Spec) { s.WorkPerCall = -1 },
		func(s *Spec) { s.Threads = 100 },
	}
	for i, mutate := range bad {
		s := smallSpec()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec accepted", i)
		}
	}
}

func TestScale(t *testing.T) {
	s := smallSpec()
	s.OuterIters = 100
	if got := s.Scale(10).OuterIters; got != 10 {
		t.Fatalf("Scale(10) iters = %d, want 10", got)
	}
	if got := s.Scale(1000).OuterIters; got != 1 {
		t.Fatalf("Scale(1000) iters = %d, want 1 (floor)", got)
	}
	if got := s.Scale(0).OuterIters; got != 100 {
		t.Fatalf("Scale(0) iters = %d, want unchanged", got)
	}
}

func TestExpectedCounts(t *testing.T) {
	s := smallSpec()
	if got := s.ExpectedNativeCalls(); got != 60 {
		t.Fatalf("ExpectedNativeCalls = %d, want 60", got)
	}
	if got := s.ExpectedJNICallbacks(); got != 15 {
		t.Fatalf("ExpectedJNICallbacks = %d, want 15", got)
	}
	s.CallbacksPerNative = 3
	if got := s.ExpectedJNICallbacks(); got != 45 {
		t.Fatalf("ExpectedJNICallbacks = %d, want 45", got)
	}
	s.JNIEvery = 0
	if got := s.ExpectedJNICallbacks(); got != 0 {
		t.Fatalf("ExpectedJNICallbacks = %d, want 0", got)
	}
	s.Threads = 4
	if got := s.ExpectedNativeCalls(); got != 240 {
		t.Fatalf("ExpectedNativeCalls with 4 threads = %d, want 240", got)
	}
}

func TestBuildRunAndGroundTruthCounts(t *testing.T) {
	s := smallSpec()
	prog, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(prog, nil, vm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Native method call count is exact by construction.
	if res.Truth.NativeMethodCalls != s.ExpectedNativeCalls() {
		t.Fatalf("native calls = %d, want %d", res.Truth.NativeMethodCalls, s.ExpectedNativeCalls())
	}
	// JNI calls: callbacks + one launcher call per thread.
	want := s.ExpectedJNICallbacks() + 1
	if res.Truth.JNICalls != want {
		t.Fatalf("JNI calls = %d, want %d", res.Truth.JNICalls, want)
	}
	if res.Ops != uint64(s.OuterIters)*s.OpsPerIter {
		t.Fatalf("Ops = %d", res.Ops)
	}
	if res.Truth.NativeCycles == 0 || res.Truth.BytecodeCycles == 0 {
		t.Fatal("ground truth has zero components")
	}
}

func TestBuildDeterministic(t *testing.T) {
	run := func() *core.RunResult {
		prog, err := Build(smallSpec())
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(prog, nil, vm.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalCycles != b.TotalCycles || a.MainResult != b.MainResult {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d",
			a.TotalCycles, a.MainResult, b.TotalCycles, b.MainResult)
	}
}

func TestBuildFreshLibraryState(t *testing.T) {
	// Two programs built from the same spec must not share the JNI
	// callback counter.
	s := smallSpec()
	p1, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := core.Run(p1, nil, vm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := core.Run(p2, nil, vm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Truth.JNICalls != r2.Truth.JNICalls {
		t.Fatalf("library state leaked between builds: %d vs %d",
			r1.Truth.JNICalls, r2.Truth.JNICalls)
	}
}

func TestMultiThreadedWorkload(t *testing.T) {
	s := smallSpec()
	s.Threads = 4
	prog, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(prog, nil, vm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Threads != 4 {
		t.Fatalf("threads = %d, want 4 (main + 3 warehouses)", res.Threads)
	}
	// The engine also counts the spawn(I)V native helper invocation.
	if res.Truth.NativeMethodCalls != s.ExpectedNativeCalls()+1 {
		t.Fatalf("native calls = %d, want %d", res.Truth.NativeMethodCalls, s.ExpectedNativeCalls()+1)
	}
	// JNI: callbacks + launcher per thread (4).
	want := s.ExpectedJNICallbacks() + 4
	if res.Truth.JNICalls != want {
		t.Fatalf("JNI calls = %d, want %d", res.Truth.JNICalls, want)
	}
}

func TestNoNativeCallsWorkload(t *testing.T) {
	s := smallSpec()
	s.NativeCallsPerIter = 0
	s.JNIEvery = 0
	prog, err := Build(s)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(prog, nil, vm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Truth.NativeMethodCalls != 0 {
		t.Fatalf("native calls = %d, want 0", res.Truth.NativeMethodCalls)
	}
	if res.Truth.NativeFraction() != 0 {
		t.Fatalf("native fraction = %f, want 0", res.Truth.NativeFraction())
	}
}

// Property: for random small specs, engine-counted native calls always
// equal the spec's expectation.
func TestNativeCallCountProperty(t *testing.T) {
	f := func(iters, ncpi, calls uint8) bool {
		s := Spec{
			Name: "prop", ClassName: "t/Prop",
			OuterIters:         int(iters%16) + 1,
			CallsPerIter:       int(calls % 4),
			WorkPerCall:        3,
			NativeCallsPerIter: int(ncpi % 4),
			NativeWork:         5,
		}
		prog, err := Build(s)
		if err != nil {
			return false
		}
		res, err := core.Run(prog, nil, vm.DefaultOptions())
		if err != nil {
			return false
		}
		return res.Truth.NativeMethodCalls == s.ExpectedNativeCalls()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSuiteIntegrity(t *testing.T) {
	suite := Suite()
	if len(suite) != 8 {
		t.Fatalf("suite has %d benchmarks, want 8", len(suite))
	}
	seen := make(map[string]bool)
	for _, b := range suite {
		if err := b.Spec.Validate(); err != nil {
			t.Errorf("%s: %v", b.Spec.Name, err)
		}
		if seen[b.Spec.Name] {
			t.Errorf("duplicate benchmark %s", b.Spec.Name)
		}
		seen[b.Spec.Name] = true
		if b.Expected.PaperNativePct <= 0 {
			t.Errorf("%s: missing paper native%%", b.Spec.Name)
		}
	}
	if !seen["jbb2005"] || !seen["compress"] {
		t.Fatal("suite missing required members")
	}
	jbb, err := ByName("jbb2005")
	if err != nil {
		t.Fatal(err)
	}
	if jbb.Spec.Threads != 4 {
		t.Fatalf("jbb2005 threads = %d, want 4", jbb.Spec.Threads)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted unknown benchmark")
	}
	if len(Names()) != 8 {
		t.Fatal("Names() length mismatch")
	}
}

// TestSuiteNativeFractionsMatchPaper asserts that each benchmark's ground-
// truth native fraction lands near Table II (generous tolerance: the test
// runs scaled-down specs, which shifts JIT warmup shares slightly).
func TestSuiteNativeFractionsMatchPaper(t *testing.T) {
	for _, b := range Suite() {
		prog, err := Build(b.Spec.Scale(20))
		if err != nil {
			t.Fatalf("%s: %v", b.Spec.Name, err)
		}
		res, err := core.Run(prog, nil, vm.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", b.Spec.Name, err)
		}
		got := res.Truth.NativeFraction() * 100
		want := b.Expected.PaperNativePct
		if got < want*0.5 || got > want*1.6 {
			t.Errorf("%s: native%% = %.2f, paper %.2f (outside tolerance)",
				b.Spec.Name, got, want)
		}
		// The paper's headline: every benchmark spends at most ~20% in
		// native code.
		if got > 25 {
			t.Errorf("%s: native%% = %.2f exceeds the paper's 20%% ceiling", b.Spec.Name, got)
		}
	}
}
