package faultinject

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/runner"
)

func cellsOf(keys ...string) []runner.Cell[string] {
	cells := make([]runner.Cell[string], len(keys))
	for i, k := range keys {
		cells[i] = runner.Cell[string]{Key: k, Do: func(context.Context) (string, error) {
			return "ok:" + k, nil
		}}
	}
	return cells
}

// TestInjectedPanicIsolated proves a Panic fault surfaces as a CellError
// in the matched cell only.
func TestInjectedPanicIsolated(t *testing.T) {
	in := New(1, Fault{Kind: Panic, Match: "bad"})
	results, _ := runner.Run(context.Background(),
		runner.Options{Parallelism: 2, Hook: in.Hook()},
		cellsOf("good-1", "bad-2", "good-3"))
	if results[0].Err != nil || results[2].Err != nil {
		t.Fatalf("unmatched cells failed: %v / %v", results[0].Err, results[2].Err)
	}
	var ce *runner.CellError
	if !errors.As(results[1].Err, &ce) || len(ce.Stack) == 0 {
		t.Fatalf("matched cell err = %v, want CellError with stack", results[1].Err)
	}
}

// TestInjectedDelayHitsDeadline proves a Delay fault drives the cell
// into its CellTimeout.
func TestInjectedDelayHitsDeadline(t *testing.T) {
	in := New(1, Fault{Kind: Delay, Match: "slow"})
	start := time.Now()
	results, _ := runner.Run(context.Background(),
		runner.Options{Parallelism: 1, CellTimeout: 20 * time.Millisecond, Hook: in.Hook()},
		cellsOf("slow-1", "fast-2"))
	if !errors.Is(results[0].Err, context.DeadlineExceeded) {
		t.Fatalf("slow cell err = %v, want DeadlineExceeded", results[0].Err)
	}
	if results[1].Err != nil {
		t.Fatalf("fast cell failed: %v", results[1].Err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("batch stalled %v — delay was not abandoned at the deadline", elapsed)
	}
}

// TestInjectedTransientRetries proves a Transient fault fails exactly N
// attempts then succeeds under retry.
func TestInjectedTransientRetries(t *testing.T) {
	in := New(1, Fault{Kind: Transient, Match: "flaky", Attempts: 2})
	results, err := runner.Run(context.Background(),
		runner.Options{MaxRetries: 3, RetryBackoff: time.Microsecond, Hook: in.Hook()},
		cellsOf("flaky-1"))
	if err != nil || results[0].Value != "ok:flaky-1" {
		t.Fatalf("got (%q, %v), want success after 2 transient failures", results[0].Value, err)
	}

	// Without enough retries the cell fails with the transient error.
	in2 := New(1, Fault{Kind: Transient, Match: "flaky", Attempts: 5})
	results, _ = runner.Run(context.Background(),
		runner.Options{MaxRetries: 1, RetryBackoff: time.Microsecond, Hook: in2.Hook()},
		cellsOf("flaky-1"))
	if results[0].Err == nil || !runner.IsTransient(results[0].Err) {
		t.Fatalf("err = %v, want transient failure after retries exhausted", results[0].Err)
	}
}

// TestCrashAfterN proves the crash fires deterministically after exactly
// N completed cells (CrashFunc overridden in-process).
func TestCrashAfterN(t *testing.T) {
	old := CrashFunc
	defer func() { CrashFunc = old }()
	crashed := make(chan struct{})
	CrashFunc = func() { close(crashed) }

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := New(1, Fault{Kind: Crash, After: 3})
	go func() {
		<-crashed
		cancel() // in-process stand-in for process death
	}()
	results, _ := runner.Run(ctx, runner.Options{Parallelism: 1, Hook: in.Hook()},
		cellsOf("c1", "c2", "c3", "c4", "c5"))
	select {
	case <-crashed:
	default:
		t.Fatal("crash never fired")
	}
	if in.Completed() < 3 {
		t.Fatalf("crash fired after %d cells, want ≥3", in.Completed())
	}
	for i := 0; i < 3; i++ {
		if results[i].Err != nil {
			t.Fatalf("pre-crash cell %d failed: %v", i, results[i].Err)
		}
	}
}

// TestEverySampling proves Every thins deterministically by seeded hash.
func TestEverySampling(t *testing.T) {
	keys := make([]string, 40)
	for i := range keys {
		keys[i] = fmt.Sprintf("cell-%02d", i)
	}
	in := New(7, Fault{Kind: Panic, Every: 4})
	results, _ := runner.Run(context.Background(), runner.Options{Parallelism: 4, Hook: in.Hook()}, cellsOf(keys...))
	var failed []int
	for i, r := range results {
		if r.Err != nil {
			failed = append(failed, i)
		}
	}
	if len(failed) == 0 || len(failed) == len(keys) {
		t.Fatalf("Every=4 faulted %d/%d cells — sampling not thinning", len(failed), len(keys))
	}
	// Re-run: identical selection.
	in2 := New(7, Fault{Kind: Panic, Every: 4})
	results2, _ := runner.Run(context.Background(), runner.Options{Parallelism: 4, Hook: in2.Hook()}, cellsOf(keys...))
	for i := range results {
		if (results[i].Err != nil) != (results2[i].Err != nil) {
			t.Fatalf("cell %d selection changed between runs with the same seed", i)
		}
	}
	// Different seed: different selection (overwhelmingly likely for 40 cells).
	in3 := New(8, Fault{Kind: Panic, Every: 4})
	results3, _ := runner.Run(context.Background(), runner.Options{Parallelism: 4, Hook: in3.Hook()}, cellsOf(keys...))
	same := true
	for i := range results {
		if (results[i].Err != nil) != (results3[i].Err != nil) {
			same = false
			break
		}
	}
	if same {
		t.Error("seed change did not move the sample")
	}
}

// TestParse covers the JVMSIM_FAULTS grammar.
func TestParse(t *testing.T) {
	in, err := Parse("seed=9; panic=compress; delay=jess:50; transient=db:2; crash-after=3")
	if err != nil {
		t.Fatal(err)
	}
	if in.Seed != 9 || len(in.Faults) != 4 {
		t.Fatalf("parsed %+v", in)
	}
	want := []Fault{
		{Kind: Panic, Match: "compress"},
		{Kind: Delay, Match: "jess", Delay: 50 * time.Millisecond},
		{Kind: Transient, Match: "db", Attempts: 2},
		{Kind: Crash, After: 3},
	}
	for i, f := range want {
		if in.Faults[i] != f {
			t.Errorf("fault %d = %+v, want %+v", i, in.Faults[i], f)
		}
	}

	if in, err := Parse(""); in != nil || err != nil {
		t.Errorf("empty spec = (%v, %v), want (nil, nil)", in, err)
	}
	for _, bad := range []string{"explode", "transient=x", "transient=:3", "crash-after=0", "crash-after=x", "seed=x", "delay=a:-1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

// TestNilInjectorHook pins the nil-interface adaptation.
func TestNilInjectorHook(t *testing.T) {
	var in *Injector
	if in.Hook() != nil {
		t.Fatal("nil injector must adapt to nil Hook")
	}
}
