// Package faultinject provides deterministic, seeded fault injectors for
// the campaign runner: panic-in-cell, delay-past-deadline,
// transient-error-then-succeed, and crash-between-cells. An Injector
// implements runner.Hook — the runner's build-tag-free injection seam —
// so the robustness tests (and the kill-mid-campaign integration tests
// driving the built binaries) exercise isolation, retry, timeout and
// resume against the real execution machinery rather than mocks.
//
// Determinism is the point: every injector decision is a pure function
// of (seed, cell key, attempt), so a failing fault scenario replays
// identically under `go test -race -count=N` and a crash-resume proof
// can assert byte-identical output. The JVMSIM_FAULTS environment
// variable (parsed by FromEnv) carries fault specs across an exec
// boundary into the built binaries:
//
//	JVMSIM_FAULTS="crash-after=3" jvmsim -checkpoint j.jsonl all
//	JVMSIM_FAULTS="panic=compress;transient=jess:2" tables -profile paper
package faultinject

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/runner"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// Panic panics inside the cell attempt — recovered by the runner
	// into a CellError with a captured stack.
	Panic Kind = iota
	// Delay blocks the attempt for Fault.Delay (default: well past any
	// test deadline), driving the cell into its CellTimeout.
	Delay
	// Transient fails the first Fault.Attempts attempts of the cell
	// with a runner.Transient error, then lets it succeed — the
	// retry-then-succeed scenario.
	Transient
	// Crash terminates the process between cells (after Fault.After
	// cells have completed) via the package CrashFunc — the
	// kill-mid-campaign scenario for resume proofs.
	Crash
)

// String names the kind as it appears in JVMSIM_FAULTS specs.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Transient:
		return "transient"
	case Crash:
		return "crash-after"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Fault is one injection rule. Match selects cells by key substring
// (empty matches every cell); Every additionally thins the selection to
// cells whose seeded hash lands on 0 mod Every (0 or 1 = every matched
// cell) so large campaigns can fault a deterministic sample.
type Fault struct {
	Kind Kind
	// Match is a substring of the cell key; empty matches all.
	Match string
	// Every thins matched cells: only those with hash(seed, key) % Every
	// == 0 fault. Zero or one means every matched cell.
	Every int
	// Attempts is, for Transient, how many leading attempts fail.
	Attempts int
	// After is, for Crash, how many cells complete before the crash.
	After int
	// Delay is the block duration for Delay faults; zero means a long
	// block (the cell is expected to be abandoned at its deadline).
	Delay time.Duration
}

// CrashFunc is what a Crash fault calls to terminate the process. Tests
// running in-process override it (e.g. to cancel a context and unwind);
// the built binaries keep the default hard exit, whose status is chosen
// to look like SIGKILL so resume handling cannot special-case it.
var CrashFunc = func() {
	os.Exit(137)
}

// Injector implements runner.Hook, applying a deterministic fault plan.
// The zero Injector injects nothing.
type Injector struct {
	Seed   int64
	Faults []Fault

	mu        sync.Mutex
	completed int // cells completed (AfterCell calls)
}

// New builds an injector from a seed and fault rules.
func New(seed int64, faults ...Fault) *Injector {
	return &Injector{Seed: seed, Faults: faults}
}

// selected reports whether f fires for key under the injector's seed.
func (in *Injector) selected(f Fault, key string) bool {
	if f.Match != "" && !strings.Contains(key, f.Match) {
		return false
	}
	if f.Every > 1 {
		h := fnv.New64a()
		fmt.Fprintf(h, "%d/%s", in.Seed, key)
		return h.Sum64()%uint64(f.Every) == 0
	}
	return true
}

// BeforeAttempt applies Panic, Delay and Transient faults. It runs
// inside the runner's panic-isolation scope with the attempt context, so
// a Panic is recovered into a CellError and a Delay observes the cell
// deadline exactly as a hung cell would.
func (in *Injector) BeforeAttempt(ctx context.Context, key string, attempt int) error {
	for _, f := range in.Faults {
		if !in.selected(f, key) {
			continue
		}
		switch f.Kind {
		case Panic:
			panic(fmt.Sprintf("faultinject: injected panic in cell %s (attempt %d)", key, attempt))
		case Delay:
			d := f.Delay
			if d <= 0 {
				d = time.Hour
			}
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return ctx.Err()
			}
		case Transient:
			if attempt <= f.Attempts {
				return runner.Transient(fmt.Errorf("faultinject: injected transient failure in cell %s (attempt %d/%d)", key, attempt, f.Attempts))
			}
		}
	}
	return nil
}

// AfterCell applies Crash faults: once the configured number of cells
// has completed, the process terminates via CrashFunc. The count
// includes the cell whose completion triggers the crash, so
// `crash-after=3` journals exactly 3 cells before dying.
func (in *Injector) AfterCell(key string, err error) {
	in.mu.Lock()
	in.completed++
	n := in.completed
	in.mu.Unlock()
	for _, f := range in.Faults {
		if f.Kind == Crash && n == f.After {
			CrashFunc()
		}
	}
}

// Completed reports how many cells the injector has seen finish.
func (in *Injector) Completed() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.completed
}

// EnvVar is the environment variable FromEnv reads.
const EnvVar = "JVMSIM_FAULTS"

// FromEnv builds an injector from the JVMSIM_FAULTS environment
// variable, the channel the kill-mid-campaign integration tests use to
// reach inside the built binaries. Returns nil (inject nothing) when the
// variable is unset or empty. The spec is semicolon-separated rules:
//
//	panic[=MATCH]          panic in matching cells
//	delay[=MATCH[:MS]]     block matching cells for MS milliseconds (default: forever)
//	transient=MATCH:N      fail matching cells' first N attempts transiently
//	crash-after=N          exit(137) after N cells complete
//	seed=S                 seed for Every-style sampling (default 0)
func FromEnv() (*Injector, error) {
	return Parse(os.Getenv(EnvVar))
}

// Parse builds an injector from a JVMSIM_FAULTS-format spec; empty spec
// means nil injector.
func Parse(spec string) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := &Injector{}
	for _, rule := range strings.Split(spec, ";") {
		rule = strings.TrimSpace(rule)
		if rule == "" {
			continue
		}
		name, arg, _ := strings.Cut(rule, "=")
		switch name {
		case "seed":
			s, err := strconv.ParseInt(arg, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("faultinject: bad seed %q", arg)
			}
			in.Seed = s
		case "panic":
			in.Faults = append(in.Faults, Fault{Kind: Panic, Match: arg})
		case "delay":
			match, ms, has := strings.Cut(arg, ":")
			f := Fault{Kind: Delay, Match: match}
			if has {
				n, err := strconv.Atoi(ms)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faultinject: bad delay %q", arg)
				}
				f.Delay = time.Duration(n) * time.Millisecond
			}
			in.Faults = append(in.Faults, f)
		case "transient":
			match, cnt, has := strings.Cut(arg, ":")
			if !has || match == "" {
				return nil, fmt.Errorf("faultinject: transient needs MATCH:N, got %q", arg)
			}
			n, err := strconv.Atoi(cnt)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: bad transient count %q", cnt)
			}
			in.Faults = append(in.Faults, Fault{Kind: Transient, Match: match, Attempts: n})
		case "crash-after":
			n, err := strconv.Atoi(arg)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("faultinject: bad crash-after %q", arg)
			}
			in.Faults = append(in.Faults, Fault{Kind: Crash, After: n})
		default:
			return nil, fmt.Errorf("faultinject: unknown fault %q (want panic, delay, transient, crash-after or seed)", name)
		}
	}
	if len(in.Faults) == 0 {
		return nil, nil
	}
	return in, nil
}

// Hook adapts a possibly-nil *Injector to a possibly-nil runner.Hook —
// a nil *Injector inside a non-nil interface would defeat the runner's
// nil check.
func (in *Injector) Hook() runner.Hook {
	if in == nil {
		return nil
	}
	return in
}
